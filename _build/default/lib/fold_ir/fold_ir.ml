(** The Fold-IR extension (paper §7.5).

    To demonstrate that Casper's translation machinery is not coupled to
    its own IR, the paper implemented the fold-based IR of Emani et
    al.'s SIGMOD'16 work inside Casper — the [fold] construct itself
    took 5 lines, plus verifier support — and synthesized Fold-IR
    summaries for the whole Ariths suite with no incremental grammars,
    just a constant bound on expression size.

    We do the same: a [fold(data, init, λ(acc, x))] summary form, its
    evaluator, verification via the same prefix-invariant checking used
    for the MapReduce IR, and a flat enumerative search over λ bodies
    built from the fragment's grammar pools. *)

module F = Casper_analysis.Fragment
module Ir = Casper_ir.Lang
module Eval = Casper_ir.Eval
module Value = Casper_common.Value
module G = Casper_synth.Grammar
module Vc = Casper_vcgen.Vc

(* The construct itself — the paper's "5 lines of code". *)
type summary = {
  dataset : string;
  output : string;
  acc : string;  (** accumulator parameter name *)
  params : string list;  (** record component parameters *)
  body : Ir.expr;  (** new accumulator value *)
}

let eval_fold (env : Eval.env) (s : summary) (init : Value.t)
    (records : Value.t list) : Value.t =
  List.fold_left
    (fun acc r ->
      let env = Eval.bind_params env s.params r in
      Eval.eval_expr ((s.acc, acc) :: env) s.body)
    init records

let pp ppf (s : summary) =
  Fmt.pf ppf "%s = fold(%s, %s₀, (%s, %s) -> %a)" s.output s.dataset
    s.output s.acc
    (String.concat ", " s.params)
    Ir.pp_expr s.body

(* ------------------------------------------------------------------ *)
(* Verification: the same three Hoare clauses, discharged over prefixes
   of the data (folds satisfy the prefix invariant definitionally, so
   only the body equivalence is at stake). *)

type check = Ok | Refuted | Skip

let check_state prog (frag : F.t) (s : summary)
    (entry : Minijava.Interp.env) : check =
  match Vc.outer_count prog frag entry with
  | exception _ -> Skip
  | n -> (
      let rec go k =
        if k > n then Ok
        else
          match Vc.run_prefix prog frag entry k with
          | exception Minijava.Interp.Runtime_error _ -> Skip
          | seq_env -> (
              let records =
                match Vc.datasets_at prog frag entry k with
                | (_, rs) :: _ -> rs
                | [] -> []
              in
              let init = List.assoc s.output entry in
              match eval_fold entry s init records with
              | exception _ -> Refuted
              | folded ->
                  if
                    Value.equal_approx folded (List.assoc s.output seq_env)
                  then go (k + 1)
                  else Refuted)
      in
      try go 0 with _ -> Skip)

let verify ?(seed = 2203) ?(count = 48) prog (frag : F.t) (s : summary) :
    bool =
  let dom = Casper_verify.Statesgen.full_domain frag in
  let batch = Casper_verify.Statesgen.gen_batch ~seed ~count dom prog frag in
  List.for_all
    (fun params ->
      match Vc.entry_of_params prog frag params with
      | exception _ -> true
      | entry -> ( match check_state prog frag s entry with
                   | Refuted -> false
                   | Ok | Skip -> true))
    batch

(* ------------------------------------------------------------------ *)
(* Flat search: candidate bodies over {acc} ∪ record params ∪ scalars,
   one operator layer plus guarded accumulation, constant size bound
   (no incremental grammar hierarchy — matching the paper's setup). *)

let candidates prog (frag : F.t) : summary Seq.t =
  match frag.outputs with
  | [ (out, oty, F.KScalar) ] ->
      let probes = Casper_synth.Cegis.make_probes prog frag in
      let pools = G.build prog frag probes in
      let params = List.map fst (Casper_synth.Lift.record_params frag) in
      let acc = "acc" in
      let ty = Casper_analysis.Analyze.ir_ty oty in
      let terms =
        Ir.Var acc
        :: List.filter (fun e -> Ir.expr_size e <= 6) (G.exprs_of_ty pools ty)
      in
      let ops =
        match ty with
        | Ir.TInt | Ir.TFloat ->
            [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Min; Ir.Max ]
        | Ir.TBool -> [ Ir.And; Ir.Or ]
        | _ -> []
      in
      let combos =
        List.concat_map
          (fun op ->
            List.map (fun t -> Ir.Binop (op, Ir.Var acc, t)) (G.cap 24 terms))
          ops
      in
      let guards = G.cap 12 pools.G.bools in
      let guarded =
        List.concat_map
          (fun g -> List.map (fun b -> Ir.If (g, b, Ir.Var acc)) combos)
          guards
      in
      List.to_seq (combos @ guarded)
      |> Seq.map (fun body ->
             {
               dataset = F.primary_dataset frag;
               output = out;
               acc;
               params;
               body;
             })
  | _ -> Seq.empty

type outcome = { found : summary list; complete : bool; tried : int }

let find_single prog (frag : F.t) : summary option * int =
  let tried = ref 0 in
  let found =
    Seq.find_map
      (fun s ->
        incr tried;
        (* quick screen on a small batch, then full verification *)
        if verify ~count:8 prog frag s && verify prog frag s then Some s
        else None)
      (candidates prog frag)
  in
  (found, !tried)

(** Synthesize Fold-IR summaries for a fragment: one fold per scalar
    output (a fragment with several accumulators is a product of
    independent folds). [complete] is true when every output got one. *)
let find_summary prog (frag : F.t) : outcome =
  let scalars =
    List.filter (fun (_, _, k) -> k = F.KScalar) frag.outputs
  in
  if List.length scalars <> List.length frag.outputs || scalars = [] then
    { found = []; complete = false; tried = 0 }
  else
    let results =
      List.map
        (fun out -> find_single prog { frag with F.outputs = [ out ] })
        scalars
    in
    {
      found = List.filter_map fst results;
      complete = List.for_all (fun (s, _) -> s <> None) results;
      tried = List.fold_left (fun a (_, t) -> a + t) 0 results;
    }
