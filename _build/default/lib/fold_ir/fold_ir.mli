(** The Fold-IR extension (paper §7.5): a [fold]-based summary language
    demonstrating that Casper's translation machinery is not coupled to
    its MapReduce IR. Verification reuses the prefix-invariant VC
    machinery; search is a flat enumeration with a constant size bound,
    exactly the paper's setup. *)

module F = Casper_analysis.Fragment
module Ir = Casper_ir.Lang
module Value = Casper_common.Value

(** A fold summary: [output = fold(dataset, output₀, λ(acc, record))]. *)
type summary = {
  dataset : string;
  output : string;
  acc : string;  (** accumulator parameter name *)
  params : string list;  (** record component parameters *)
  body : Ir.expr;  (** the new accumulator value *)
}

(** Denotation: left fold of [body] over the records. *)
val eval_fold :
  Casper_ir.Eval.env -> summary -> Value.t -> Value.t list -> Value.t

val pp : Format.formatter -> summary -> unit

type check = Ok | Refuted | Skip

(** Check the summary against one entry state over all data prefixes. *)
val check_state :
  Minijava.Ast.program -> F.t -> summary -> Minijava.Interp.env -> check

(** Full verification over the large state domain. *)
val verify :
  ?seed:int -> ?count:int -> Minijava.Ast.program -> F.t -> summary -> bool

(** Candidate folds for a single-scalar-output fragment. *)
val candidates : Minijava.Ast.program -> F.t -> summary Seq.t

type outcome = {
  found : summary list;  (** one fold per scalar output *)
  complete : bool;  (** every output variable got a verified fold *)
  tried : int;
}

(** Synthesize Fold-IR summaries for a fragment (multi-accumulator
    fragments are products of independent folds). *)
val find_summary : Minijava.Ast.program -> F.t -> outcome
