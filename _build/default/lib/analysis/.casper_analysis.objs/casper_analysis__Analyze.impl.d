lib/analysis/analyze.ml: Casper_common Casper_ir Fmt Fragment List Minijava Stdlib String
