lib/analysis/fragment.ml: Casper_common Casper_ir List Minijava
