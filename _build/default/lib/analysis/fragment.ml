(** Code fragments and their iteration schemas.

    A fragment is a loop nest that Casper's analyzer selected for
    translation (§6.2), together with the statements preceding it in the
    enclosing method (which establish the entry state: accumulator
    initializations, parsed constants, output allocations).

    The iteration schema describes how the loop consumes data — which
    dataset(s) it reads and what a *record* looks like to the IR mapper.
    This is what lets verification truncate the data to a prefix
    (Figure 4's [mat\[0..i\]]) and lets the engine convert live inputs
    into key-value records. *)

open Minijava.Ast

type schema =
  | SList of { data : string; elem : string; elem_ty : ty }
      (** [for (T x : data)] — records are the list elements *)
  | SArrays of {
      idx : string;
      bound : expr;  (** iteration count, evaluable at loop entry *)
      arrays : (string * ty) list;  (** arrays indexed by [idx]; elem types *)
    }
      (** counted loop over parallel arrays — records are
          (i, a\[i\], b\[i\], …) *)
  | SMatrix of {
      data : string;
      i : string;
      j : string;
      rows : expr;
      cols : expr;
      elem_ty : ty;
    }  (** doubly-nested loop over a 2-D array — records are (i, j, v) *)
  | SJoin of {
      d1 : string;
      x1 : string;
      ty1 : ty;
      d2 : string;
      x2 : string;
      ty2 : ty;
    }  (** nested iteration over two datasets — join-shaped fragment *)

(** Syntactic features of a fragment (Appendix E.1). *)
type feature =
  | FConditionals
  | FUserDefinedTypes
  | FNestedLoops
  | FMultipleDatasets
  | FMultidimDataset

let feature_name = function
  | FConditionals -> "Conditionals"
  | FUserDefinedTypes -> "User Defined Types"
  | FNestedLoops -> "Nested Loops"
  | FMultipleDatasets -> "Multiple Datasets"
  | FMultidimDataset -> "Multidim. Dataset"

(** Why a fragment cannot be translated (§7.1 failure taxonomy). *)
type unsupported =
  | Unmodeled_method of string
      (** library method with no IR model (Fiji/ImageJ failures) *)
  | Transformer_needs_loop
      (** cross-record access / variable-size kernels — would require
          loops inside λm (Phoenix & Stats failures) *)
  | Broadcast_mapper
      (** one input record feeding many reducers (Bigλ failures) *)
  | Early_exit  (** break/continue escaping the loop *)
  | No_iteration_space  (** loop does not iterate a data structure *)

let unsupported_to_string = function
  | Unmodeled_method m -> "unmodeled library method " ^ m
  | Transformer_needs_loop -> "transformer functions would require loops"
  | Broadcast_mapper -> "mapper would broadcast to many reducers"
  | Early_exit -> "loop has data-dependent early exit"
  | No_iteration_space -> "loop does not iterate a dataset"

type out_kind = KScalar | KArray | KMap

type t = {
  frag_id : string;  (** "<method>#<n>" *)
  suite : string;  (** benchmark suite name, filled by the driver *)
  benchmark : string;
  meth : meth;
  pre : stmt list;  (** statements before the loop in the method body *)
  loop : stmt;
  body : stmt list;  (** the loop's body *)
  schema : schema;
  input_scalars : (string * ty) list;
      (** scalar/string/date variables live at loop entry and read in the
          loop — free variables of the summary *)
  outputs : (string * ty * out_kind) list;
  constants : Casper_common.Value.t list;
  operators : Casper_ir.Lang.binop list;
  methods : string list;  (** modeled library methods used *)
  features : feature list;
  unsupported : unsupported option;
  loc : int;  (** source lines of the fragment, for Table 2 *)
}

let datasets_of_schema = function
  | SList { data; _ } -> [ data ]
  | SArrays { arrays; _ } -> List.map fst arrays
  | SMatrix { data; _ } -> [ data ]
  | SJoin { d1; d2; _ } -> [ d1; d2 ]

(** The dataset whose prefix the loop invariant truncates. *)
let primary_dataset f =
  match f.schema with
  | SList { data; _ } | SMatrix { data; _ } -> data
  | SArrays { arrays; _ } -> (
      match arrays with (d, _) :: _ -> d | [] -> "?")
  | SJoin { d1; _ } -> d1

let out_kind_of_ty = function
  | TArray _ -> KArray
  | TMap _ -> KMap
  | _ -> KScalar
