lib/vcgen/vc.ml: Casper_analysis Casper_common Casper_ir Fmt List Minijava Printexc String
