(** Casper's high-level intermediate representation for program summaries
    (paper §3.1, Figure 3, Appendix B).

    A program summary (PS) asserts that every output variable of a code
    fragment equals the result of a [map]/[reduce]/[join] pipeline over
    the fragment's input data. Transformer functions λm and λr are
    restricted exactly as in the paper: λm bodies are sequences of
    (optionally guarded) [emit] statements producing key-value pairs or
    plain values; λr bodies are single expressions. *)

type ty =
  | TInt
  | TFloat
  | TBool
  | TString
  | TDate
  | TTuple of ty list
  | TRecord of string  (** user-defined struct, by class name *)
  | TBag of ty
  | TPair of ty * ty

let rec pp_ty ppf = function
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TBool -> Fmt.string ppf "bool"
  | TString -> Fmt.string ppf "string"
  | TDate -> Fmt.string ppf "date"
  | TTuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_ty) ts
  | TRecord n -> Fmt.string ppf n
  | TBag t -> Fmt.pf ppf "mset[%a]" pp_ty t
  | TPair (k, v) -> Fmt.pf ppf "(%a,%a)" pp_ty k pp_ty v

let ty_equal (a : ty) (b : ty) = a = b

(** Byte size of a value of this type — the cost model's [sizeOf]
    (paper §7.4: 40 for String, 10 for Boolean, 28 for a Boolean pair). *)
let rec size_of_ty = function
  | TInt | TDate -> 12
  | TFloat -> 16
  | TBool -> 10
  | TString -> 40
  | TTuple ts -> 8 + List.fold_left (fun a t -> a + size_of_ty t) 0 ts
  | TPair (k, v) -> 8 + size_of_ty k + size_of_ty v
  | TRecord _ -> 48
  | TBag t -> 8 + (4 * size_of_ty t)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Min
  | Max  (** surfaced as binops so grammar enumeration treats them uniformly *)

type expr =
  | CInt of int
  | CFloat of float
  | CBool of bool
  | CStr of string
  | Var of string  (** λ parameter or free fragment input *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list  (** modeled library method *)
  | MkTuple of expr list
  | TupleGet of expr * int
  | Field of expr * string
  | If of expr * expr * expr

(** One emit statement of a λm body: an optional guard, and a payload that
    is either a key-value pair (feeding keyed reduction) or a plain value
    (feeding a global reduction). *)
type payload = KV of expr * expr | Val of expr
type emit = { guard : expr option; payload : payload }

type lam_m = {
  m_params : string list;
      (** bound positionally to the components of each input record; a
          single parameter binds the whole record *)
  emits : emit list;
}

type lam_r = { r_left : string; r_right : string; r_body : expr }

type node =
  | Data of string  (** a named input dataset of the fragment *)
  | Map of node * lam_m
  | Reduce of node * lam_r
      (** keyed reduction when the input is a bag of pairs, global
          reduction otherwise (Appendix C picks the API variant the same
          way) *)
  | Join of node * node
      (** all pairs of elements with matching keys: (k,v1) ⋈ (k,v2) →
          (k,(v1,v2)) *)

(** How an output variable reads its value out of the pipeline result
    (Figure 3: [∀v. v = MR] or [∀v. v = MR\[vid\]]). *)
type extract =
  | Whole
      (** the variable (an array or map) is the whole associative result *)
  | AtKey of Casper_common.Value.t
      (** scalar at a fixed key — [MR\[vid\]] *)
  | Proj of int option
      (** from a global reduction: the value itself, or one tuple slot *)

type summary = {
  pipeline : node;
  bindings : (string * extract) list;  (** output variable → extraction *)
}

(* ------------------------------------------------------------------ *)

let rec node_depth = function
  | Data _ -> 0
  | Map (n, _) | Reduce (n, _) -> 1 + node_depth n
  | Join (a, b) -> 1 + max (node_depth a) (node_depth b)

let rec node_datasets = function
  | Data d -> [ d ]
  | Map (n, _) | Reduce (n, _) -> node_datasets n
  | Join (a, b) -> node_datasets a @ node_datasets b

(** Number of map/reduce/join operations — the "Mean # Op" metric of
    Table 2. *)
let rec op_count = function
  | Data _ -> 0
  | Map (n, _) | Reduce (n, _) -> 1 + op_count n
  | Join (a, b) -> 1 + op_count a + op_count b

let rec expr_size = function
  | CInt _ | CFloat _ | CBool _ | CStr _ | Var _ -> 1
  | Unop (_, a) -> 1 + expr_size a
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Call (_, args) -> 1 + List.fold_left (fun s a -> s + expr_size a) 0 args
  | MkTuple es -> List.fold_left (fun s a -> s + expr_size a) 1 es
  | TupleGet (a, _) | Field (a, _) -> 1 + expr_size a
  | If (a, b, c) -> 1 + expr_size a + expr_size b + expr_size c

let rec expr_vars = function
  | CInt _ | CFloat _ | CBool _ | CStr _ -> []
  | Var v -> [ v ]
  | Unop (_, a) | TupleGet (a, _) | Field (a, _) -> expr_vars a
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Call (_, args) | MkTuple args -> List.concat_map expr_vars args
  | If (a, b, c) -> expr_vars a @ expr_vars b @ expr_vars c

(* ------------------------------------------------------------------ *)
(* Pretty printing in the paper's notation                              *)

let unop_str = function Neg -> "-" | Not -> "!"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | Min -> "min"
  | Max -> "max"

let rec pp_expr ppf = function
  | CInt n -> Fmt.int ppf n
  | CFloat f -> Fmt.float ppf f
  | CBool b -> Fmt.bool ppf b
  | CStr s -> Fmt.pf ppf "%S" s
  | Var v -> Fmt.string ppf v
  | Unop (op, a) -> Fmt.pf ppf "%s%a" (unop_str op) pp_atom a
  | Binop ((Min | Max) as op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Fmt.pf ppf "%a %s %a" pp_atom a (binop_str op) pp_atom b
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args
  | MkTuple es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_expr) es
  | TupleGet (a, i) -> Fmt.pf ppf "%a.%d" pp_atom a i
  | Field (a, f) -> Fmt.pf ppf "%a.%s" pp_atom a f
  | If (c, t, e) ->
      Fmt.pf ppf "if %a then %a else %a" pp_expr c pp_expr t pp_expr e

and pp_atom ppf e =
  match e with
  | CInt _ | CFloat _ | CBool _ | CStr _ | Var _ | Call _ | MkTuple _
  | TupleGet _ | Field _ ->
      pp_expr ppf e
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

let pp_emit ppf { guard; payload } =
  let pp_payload ppf = function
    | KV (k, v) -> Fmt.pf ppf "emit(%a, %a)" pp_expr k pp_expr v
    | Val v -> Fmt.pf ppf "emit(%a)" pp_expr v
  in
  match guard with
  | None -> pp_payload ppf payload
  | Some g -> Fmt.pf ppf "if (%a) %a" pp_expr g pp_payload payload

let pp_lam_m ppf lm =
  Fmt.pf ppf "(%a) -> {%a}"
    Fmt.(list ~sep:comma string)
    lm.m_params
    Fmt.(list ~sep:(any "; ") pp_emit)
    lm.emits

let pp_lam_r ppf lr =
  Fmt.pf ppf "(%s, %s) -> %a" lr.r_left lr.r_right pp_expr lr.r_body

let rec pp_node ppf = function
  | Data d -> Fmt.string ppf d
  | Map (n, lm) -> Fmt.pf ppf "map(%a, %a)" pp_node n pp_lam_m lm
  | Reduce (n, lr) -> Fmt.pf ppf "reduce(%a, %a)" pp_node n pp_lam_r lr
  | Join (a, b) -> Fmt.pf ppf "join(%a, %a)" pp_node a pp_node b

let pp_extract ppf = function
  | Whole -> Fmt.string ppf "MR"
  | AtKey k -> Fmt.pf ppf "MR[%a]" Casper_common.Value.pp k
  | Proj None -> Fmt.string ppf "MR (scalar)"
  | Proj (Some i) -> Fmt.pf ppf "MR.%d" i

let pp_summary ppf s =
  Fmt.pf ppf "@[<v>MR := %a@,%a@]" pp_node s.pipeline
    Fmt.(
      list ~sep:cut (fun ppf (v, ex) ->
          Fmt.pf ppf "%s = %a" v pp_extract ex))
    s.bindings

let summary_to_string s = Fmt.str "%a" pp_summary s
