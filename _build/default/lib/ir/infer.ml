(** Type inference for IR expressions and pipelines.

    Grammar generation is type-directed (§3.2: "Casper also uses type
    information of variables to prune invalid production rules"), and the
    code generator dispatches on λ types to select API variants
    (Appendix C). *)

open Lang

exception Ill_typed of string

let err fmt = Fmt.kstr (fun s -> raise (Ill_typed s)) fmt

type tenv = {
  vars : (string * ty) list;
  structs : (string * (string * ty) list) list;
      (** user-defined record types *)
}

let lookup_var tenv v =
  match List.assoc_opt v tenv.vars with
  | Some t -> t
  | None -> err "unbound %s" v

let library_ret name args_ty =
  match (name, args_ty) with
  | ("Math.min" | "Math.max" | "Math.abs"), (t :: _) -> t
  | ( ( "Math.sqrt" | "Math.pow" | "Math.exp" | "Math.log" | "Math.floor"
      | "Math.ceil" | "Math.signum" | "Double.parseDouble" ),
      _ ) ->
      TFloat
  | ("Math.round" | "Integer.parseInt" | "String.length" | "String.compareTo"), _
    ->
      TInt
  | "Util.parseDate", _ -> TDate
  | ( ( "String.equals" | "String.equalsIgnoreCase" | "String.contains"
      | "String.startsWith" | "String.isEmpty" | "Date.before" | "Date.after"
      ),
      _ ) ->
      TBool
  | ("String.toLowerCase" | "String.toUpperCase" | "String.charAt"), _ ->
      TString
  | "String.split", _ -> TBag TString
  | _ -> err "unknown library method %s" name

let is_num = function TInt | TFloat -> true | _ -> false

let rec infer (tenv : tenv) (e : expr) : ty =
  match e with
  | CInt _ -> TInt
  | CFloat _ -> TFloat
  | CBool _ -> TBool
  | CStr _ -> TString
  | Var v -> lookup_var tenv v
  | Unop (Neg, a) -> infer tenv a
  | Unop (Not, _) -> TBool
  | Binop ((Add | Sub | Mul | Div | Mod | Min | Max), a, b) -> (
      match (infer tenv a, infer tenv b) with
      | TString, _ | _, TString -> TString
      | TFloat, t when is_num t -> TFloat
      | t, TFloat when is_num t -> TFloat
      | TInt, TInt -> TInt
      | ta, tb ->
          err "arithmetic on %s and %s" (Fmt.str "%a" pp_ty ta)
            (Fmt.str "%a" pp_ty tb))
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> TBool
  | Call (f, args) -> library_ret f (List.map (infer tenv) args)
  | MkTuple es -> TTuple (List.map (infer tenv) es)
  | TupleGet (a, i) -> (
      match infer tenv a with
      | TTuple ts when i < List.length ts -> List.nth ts i
      | TPair (k, _) when i = 0 -> k
      | TPair (_, v) when i = 1 -> v
      | t -> err "projection %d of %s" i (Fmt.str "%a" pp_ty t))
  | Field (a, f) -> (
      match infer tenv a with
      | TRecord name -> (
          match List.assoc_opt name tenv.structs with
          | Some fields -> (
              match List.assoc_opt f fields with
              | Some t -> t
              | None -> err "record %s has no field %s" name f)
          | None -> err "unknown record type %s" name)
      | t -> err "field %s of non-record %s" f (Fmt.str "%a" pp_ty t))
  | If (_, t, _) -> infer tenv t

(** Element type produced by a pipeline, given the record type of each
    named dataset. [`KVs (k,v)] for keyed stages, [`Plain t] otherwise. *)
let rec infer_node (tenv : tenv) (record_ty : string -> ty) (n : node) :
    [ `Recs of ty | `KVs of ty * ty | `Plain of ty ] =
  match n with
  | Data d -> `Recs (record_ty d)
  | Map (src, lm) -> (
      let elt_ty =
        match infer_node tenv record_ty src with
        | `Recs t | `Plain t -> t
        | `KVs (k, v) -> TTuple [ k; v ]
      in
      let env_params =
        match (lm.m_params, elt_ty) with
        | [ p ], t -> [ (p, t) ]
        | ps, TTuple ts when List.length ps = List.length ts ->
            List.combine ps ts
        | ps, t ->
            err "λm params %d vs record %s" (List.length ps)
              (Fmt.str "%a" pp_ty t)
      in
      let tenv' = { tenv with vars = env_params @ tenv.vars } in
      match lm.emits with
      | [] -> err "λm with no emits"
      | { payload = KV (k, v); _ } :: _ ->
          `KVs (infer tenv' k, infer tenv' v)
      | { payload = Val v; _ } :: _ -> `Plain (infer tenv' v))
  | Reduce (src, _) -> infer_node tenv record_ty src
  | Join (a, b) -> (
      match (infer_node tenv record_ty a, infer_node tenv record_ty b) with
      | `KVs (k, v1), `KVs (_, v2) -> `KVs (k, TTuple [ v1; v2 ])
      | _ -> err "join over non-keyed inputs")
