lib/ir/lang.ml: Casper_common Fmt List
