lib/ir/eval.ml: Array Casper_common Float Fmt Lang List
