lib/ir/infer.ml: Fmt Lang List
