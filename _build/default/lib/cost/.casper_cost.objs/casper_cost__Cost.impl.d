lib/cost/cost.ml: Casper_ir Float List
