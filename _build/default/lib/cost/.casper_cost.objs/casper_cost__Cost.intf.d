lib/cost/cost.mli: Casper_ir
