(** Reference interpreter for MiniJava.

    This is the ground truth for verification: a candidate program summary
    is correct iff evaluating it in the IR produces the same values as
    running the sequential code here (paper §3.3 formalizes this with
    Hoare-logic VCs; our bounded/full verifiers discharge them by
    execution over program states).

    Java [Map]s are modeled as bags of (key, value) tuples with unique
    keys; arrays and lists as {!Casper_common.Value.List}. Mutation is by
    functional update of the environment, which is cheap at verification
    scale. *)

open Ast
module Value = Casper_common.Value
module Library = Casper_common.Library

exception Runtime_error of string

let err fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type env = (string * Value.t) list

(* Break/Continue carry the environment at the point they fired, so
   that assignments executed earlier in the same iteration survive. *)
exception Break_exc of env
exception Continue_exc of env
exception Return_exc of Value.t option

let lookup (env : env) v =
  match List.assoc_opt v env with
  | Some x -> x
  | None -> err "unbound variable %s" v

let bind (env : env) v x : env = (v, x) :: List.remove_assoc v env

let rec default_value prog = function
  | TInt | TLong | TDate -> Value.Int 0
  | TFloat -> Value.Float 0.0
  | TBool -> Value.Bool false
  | TString -> Value.Str ""
  | TArray _ | TList _ | TMap _ -> Value.List []
  | TClass c -> (
      match find_class prog c with
      | Some cd ->
          Value.Struct
            (c, List.map (fun (t, f) -> (f, default_value prog t)) cd.cfields)
      | None -> err "unknown class %s" c)
  | TVoid -> Value.Tuple []

(* Iteration fuel guards against accidental non-termination in synthesized
   or adversarial inputs. *)
let max_steps = 50_000_000

type state = { prog : program; mutable steps : int }

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > max_steps then err "interpreter step budget exceeded"

let num_binop op a b =
  let open Value in
  match (a, b) with
  | Int x, Int y -> (
      match op with
      | Add -> Int (x + y)
      | Sub -> Int (x - y)
      | Mul -> Int (x * y)
      | Div -> if y = 0 then err "division by zero" else Int (x / y)
      | Mod -> if y = 0 then err "division by zero" else Int (x mod y)
      | _ -> assert false)
  | _ ->
      let x = as_float a and y = as_float b in
      (match op with
      | Add -> Float (x +. y)
      | Sub -> Float (x -. y)
      | Mul -> Float (x *. y)
      | Div -> Float (x /. y)
      | Mod -> Float (Float.rem x y)
      | _ -> assert false)

let eval_binop op (a : Value.t) (b : Value.t) : Value.t =
  let open Value in
  match op with
  | Add -> (
      match (a, b) with
      | Str x, Str y -> Str (x ^ y)
      | Str x, v -> Str (x ^ to_string v)
      | v, Str y -> Str (to_string v ^ y)
      | _ -> num_binop Add a b)
  | Sub | Mul | Div | Mod -> num_binop op a b
  | Lt -> Bool (compare a b < 0)
  | Le -> Bool (compare a b <= 0)
  | Gt -> Bool (compare a b > 0)
  | Ge -> Bool (compare a b >= 0)
  | Eq -> Bool (equal a b)
  | Ne -> Bool (not (equal a b))
  | And -> Bool (as_bool a && as_bool b)
  | Or -> Bool (as_bool a || as_bool b)
  | BitAnd -> Int (as_int a land as_int b)
  | BitOr -> Int (as_int a lor as_int b)
  | BitXor -> Int (as_int a lxor as_int b)
  | Shl -> Int (as_int a lsl as_int b)
  | Shr -> Int (as_int a asr as_int b)

let list_update l i x =
  if i < 0 || i >= List.length l then err "index %d out of bounds" i
  else List.mapi (fun j y -> if j = i then x else y) l

(* Map-as-assoc-bag helpers *)
let map_get pairs k =
  List.find_map
    (fun p ->
      match p with
      | Value.Tuple [ k'; v ] when Value.equal k k' -> Some v
      | _ -> None)
    pairs

let map_put pairs k v =
  let found = ref false in
  let pairs' =
    List.map
      (fun p ->
        match p with
        | Value.Tuple [ k'; _ ] when Value.equal k k' ->
            found := true;
            Value.Tuple [ k; v ]
        | p -> p)
      pairs
  in
  if !found then pairs' else pairs @ [ Value.Tuple [ k; v ] ]

let rec eval st (env : env) (e : expr) : Value.t =
  tick st;
  let open Value in
  match e with
  | IntLit n -> Int n
  | FloatLit f -> Float f
  | BoolLit b -> Bool b
  | StrLit s -> Str s
  | Var v -> lookup env v
  | Unop (Neg, a) -> (
      match eval st env a with
      | Int n -> Int (-n)
      | Float f -> Float (-.f)
      | v -> terr "negation of %a" pp v)
  | Unop (Not, a) -> Bool (not (as_bool (eval st env a)))
  | Unop (BitNot, a) -> Int (lnot (as_int (eval st env a)))
  | Binop (And, a, b) ->
      (* short-circuit *)
      if as_bool (eval st env a) then eval st env b else Bool false
  | Binop (Or, a, b) ->
      if as_bool (eval st env a) then Bool true else eval st env b
  | Binop (op, a, b) -> eval_binop op (eval st env a) (eval st env b)
  | Index (a, i) -> (
      let l = as_list (eval st env a) in
      let i = as_int (eval st env i) in
      if i < 0 then err "negative index %d" i
      else
        match List.nth_opt l i with
        | Some x -> x
        | None -> err "index %d out of bounds (len %d)" i (List.length l))
  | Field (a, f) -> field f (eval st env a)
  | ArrLen a -> Int (List.length (as_list (eval st env a)))
  | Call (name, args) -> (
      let argv = List.map (eval st env) args in
      if Library.is_known name then Library.apply name argv
      else
        match find_method st.prog name with
        | Some m -> call_method st m argv
        | None -> err "unknown method %s" name)
  | MethodCall (recv, name, args) -> (
      let r = eval st env recv in
      let argv = List.map (eval st env) args in
      match (r, name, argv) with
      | Str _, _, _ -> Library.apply ("String." ^ name) (r :: argv)
      | Int _, ("before" | "after"), _ ->
          Library.apply ("Date." ^ name) (r :: argv)
      | List pairs, "get", [ k ]
        when (match k with Int _ -> false | _ -> true)
             || Option.is_some (map_get pairs k) -> (
          (* Map.get: lookup by key when the receiver is an association
             bag (non-integer key, or the key is present) *)
          match map_get pairs k with
          | Some v -> v
          | None -> err "Map.get: no such key %s" (to_string k))
      | List l, "get", [ Int i ] -> (
          if i < 0 then err "List.get(%d): negative index" i
          else
            match List.nth_opt l i with
            | Some x -> x
            | None -> err "List.get(%d) out of bounds" i)
      | List l, "size", [] -> Int (List.length l)
      | List l, "isEmpty", [] -> Bool (List.is_empty l)
      | List l, "contains", [ x ] -> Bool (List.exists (equal x) l)
      | List l, "indexOf", [ x ] ->
          let rec go i = function
            | [] -> -1
            | y :: _ when equal x y -> i
            | _ :: rest -> go (i + 1) rest
          in
          Int (go 0 l)
      | List pairs, "containsKey", [ k ] ->
          Bool (Option.is_some (map_get pairs k))
      | List pairs, "getOrDefault", [ k; d ] ->
          Option.value (map_get pairs k) ~default:d
      | Struct (_, fields), _, [] when List.mem_assoc name fields ->
          List.assoc name fields
      | _ -> err "unsupported method call %s" name)
  | NewArray (t, dims) ->
      let dim_vals = List.map (fun d -> as_int (eval st env d)) dims in
      let rec build = function
        | [] -> default_value st.prog t
        | d :: rest ->
            if d < 0 then err "negative array size"
            else List (List.init d (fun _ -> build rest))
      in
      build dim_vals
  | NewObj (name, args) -> (
      match name with
      | "ArrayList" | "LinkedList" | "HashMap" | "TreeMap" -> List []
      | _ -> (
          match find_class st.prog name with
          | Some cd ->
              let argv = List.map (eval st env) args in
              if List.length argv <> List.length cd.cfields then
                err "constructor arity mismatch for %s" name
              else
                Struct
                  (name, List.map2 (fun (_, f) v -> (f, v)) cd.cfields argv)
          | None -> err "unknown class %s" name))
  | Ternary (c, a, b) ->
      if as_bool (eval st env c) then eval st env a else eval st env b
  | Cast (t, a) -> (
      match (t, eval st env a) with
      | (TInt | TLong), Float f -> Int (int_of_float f)
      | (TInt | TLong), Int n -> Int n
      | TFloat, Int n -> Float (float_of_int n)
      | TFloat, Float f -> Float f
      | _, v -> v)

(* Mutating method calls on collections (add/put/set) need the *statement*
   context so the updated collection is written back to the environment. *)
and exec_method_call_stmt st env recv name args : env option =
  match recv with
  | Var base -> (
      let r = lookup env base in
      let argv = List.map (eval st env) args in
      match (r, name, argv) with
      | Value.List l, "add", [ x ] -> Some (bind env base (Value.List (l @ [ x ])))
      | Value.List l, "set", [ Value.Int i; x ] ->
          Some (bind env base (Value.List (list_update l i x)))
      | Value.List pairs, "put", [ k; v ] ->
          Some (bind env base (Value.List (map_put pairs k v)))
      | _ -> None)
  | _ -> None

and assign st (env : env) (lv : lvalue) (x : Value.t) : env =
  match lv with
  | LVar v -> bind env v x
  | LIndex (base, idx) ->
      let i = Value.as_int (eval st env idx) in
      update_path st env base (fun cur ->
          Value.List (list_update (Value.as_list cur) i x))
  | LField (base, f) ->
      update_path st env base (fun cur ->
          let name, fields = Value.as_struct cur in
          Value.Struct
            ( name,
              List.map
                (fun (k, v) -> if String.equal k f then (k, x) else (k, v))
                fields ))

(* Rebuild the value at an lvalue path rooted at a variable. *)
and update_path st (env : env) (path : expr) (f : Value.t -> Value.t) : env =
  match path with
  | Var v -> bind env v (f (lookup env v))
  | Index (base, idx) ->
      let i = Value.as_int (eval st env idx) in
      update_path st env base (fun cur ->
          let l = Value.as_list cur in
          match List.nth_opt l i with
          | Some elt -> Value.List (list_update l i (f elt))
          | None -> err "index %d out of bounds" i)
  | Field (base, fld) ->
      update_path st env base (fun cur ->
          let name, fields = Value.as_struct cur in
          Value.Struct
            ( name,
              List.map
                (fun (k, v) -> if String.equal k fld then (k, f v) else (k, v))
                fields ))
  | _ -> err "unsupported lvalue"

and exec st (env : env) (s : stmt) : env =
  tick st;
  match s with
  | Decl (t, v, init) ->
      let x =
        match init with
        | Some e -> (
            match (t, eval st env e) with
            (* Java's implicit int→double widening at initialization *)
            | TFloat, Value.Int n -> Value.Float (float_of_int n)
            | _, x -> x)
        | None -> default_value st.prog t
      in
      bind env v x
  | Assign (lv, e) ->
      let x = eval st env e in
      assign st env lv x
  | If (c, t, f) ->
      if Value.as_bool (eval st env c) then exec_list st env t
      else exec_list st env f
  | While (c, body) ->
      let env = ref env in
      (try
         while Value.as_bool (eval st !env c) do
           tick st;
           try env := exec_list st !env body with Continue_exc e -> env := e
         done
       with Break_exc e -> env := e);
      !env
  | DoWhile (body, c) ->
      let env = ref env in
      (try
         let continue_ = ref true in
         while !continue_ do
           tick st;
           (try env := exec_list st !env body with Continue_exc e -> env := e);
           continue_ := Value.as_bool (eval st !env c)
         done
       with Break_exc e -> env := e);
      !env
  | For (init, cond, upd, body) ->
      let env = ref (exec_list st env init) in
      (try
         while
           match cond with
           | Some c -> Value.as_bool (eval st !env c)
           | None -> true
         do
           tick st;
           (try env := exec_list st !env body with Continue_exc e -> env := e);
           env := exec_list st !env upd
         done
       with Break_exc e -> env := e);
      !env
  | ForEach (_, v, e, body) ->
      let items = Value.as_list (eval st env e) in
      let env = ref env in
      (try
         List.iter
           (fun item ->
             tick st;
             env := bind !env v item;
             try env := exec_list st !env body with Continue_exc e -> env := e)
           items
       with Break_exc e -> env := e);
      !env
  | Break -> raise (Break_exc env)
  | Continue -> raise (Continue_exc env)
  | Return None -> raise (Return_exc None)
  | Return (Some e) -> raise (Return_exc (Some (eval st env e)))
  | ExprStmt (MethodCall (recv, name, args)) -> (
      match exec_method_call_stmt st env recv name args with
      | Some env' -> env'
      | None ->
          ignore (eval st env (MethodCall (recv, name, args)));
          env)
  | ExprStmt e ->
      ignore (eval st env e);
      env
  | Block b -> exec_list st env b

and exec_list st env stmts = List.fold_left (exec st) env stmts

and call_method st (m : meth) (args : Value.t list) : Value.t =
  if List.length args <> List.length m.params then
    err "arity mismatch calling %s" m.mname
  else
    let env = List.map2 (fun (_, p) a -> (p, a)) m.params args in
    match exec_list st env m.body with
    | _ -> Value.Tuple [] (* void, no return *)
    | exception Return_exc (Some v) -> v
    | exception Return_exc None -> Value.Tuple []

(** Run method [name] of [prog] on [args]. *)
let run_method (prog : program) (name : string) (args : Value.t list) :
    Value.t =
  match find_method prog name with
  | Some m -> call_method { prog; steps = 0 } m args
  | None -> err "no method named %s" name

(** Execute a statement list in a given environment (fragment execution
    for verification). Returns the final environment. *)
let run_stmts (prog : program) (env : env) (stmts : stmt list) : env =
  let st = { prog; steps = 0 } in
  try exec_list st env stmts
  with Return_exc _ -> err "return inside fragment"

(** Evaluate one expression in an environment. *)
let eval_expr (prog : program) (env : env) (e : expr) : Value.t =
  eval { prog; steps = 0 } env e
