(** Reference interpreter for MiniJava — the ground truth verification
    compares candidate summaries against. Java [Map]s are modeled as
    bags of (key, value) tuples with unique keys; mutation is by
    functional environment update (cheap at verification scale). *)

module Value = Casper_common.Value

exception Runtime_error of string

type env = (string * Value.t) list

(* Break/Continue carry the environment at the point they fired, so that
   assignments executed earlier in the same iteration survive. *)
exception Break_exc of env
exception Continue_exc of env
exception Return_exc of Value.t option

(** Default (zero) value of a declared type. *)
val default_value : Ast.program -> Ast.ty -> Value.t

(** Run a named method on argument values.
    @raise Runtime_error on dynamic faults (out-of-bounds, division by
    zero, arity mismatches, exceeding the step budget). *)
val run_method :
  Ast.program -> string -> Value.t list -> Value.t

(** Execute a statement list in an environment; returns the final
    environment (fragment execution for verification). *)
val run_stmts :
  Ast.program -> env -> Ast.stmt list -> env

(** Evaluate one expression in an environment. *)
val eval_expr : Ast.program -> env -> Ast.expr -> Value.t
