(** Recursive-descent parser for MiniJava. The Polyglot substitute: it
    turns Java-like source text into {!Ast.program}. *)

open Ast
open Lexer

exception Parse_error of string

type t = { toks : (token * int) array; mutable idx : int }

let make toks = { toks = Array.of_list toks; idx = 0 }
let peek p = fst p.toks.(p.idx)
let peek2 p = if p.idx + 1 < Array.length p.toks then fst p.toks.(p.idx + 1) else EOF
let peekn p n = if p.idx + n < Array.length p.toks then fst p.toks.(p.idx + n) else EOF
let line p = snd p.toks.(min p.idx (Array.length p.toks - 1))
let advance p = p.idx <- p.idx + 1

let error p fmt =
  Fmt.kstr
    (fun s ->
      raise
        (Parse_error
           (Fmt.str "line %d: %s (at %s)" (line p) s
              (token_to_string (peek p)))))
    fmt

let expect_punct p s =
  match peek p with
  | PUNCT x when String.equal x s -> advance p
  | _ -> error p "expected '%s'" s

let expect_keyword p s =
  match peek p with
  | KEYWORD x when String.equal x s -> advance p
  | _ -> error p "expected '%s'" s

let expect_ident p =
  match peek p with
  | IDENT x ->
      advance p;
      x
  | _ -> error p "expected identifier"

let is_punct p s = match peek p with PUNCT x -> String.equal x s | _ -> false

let eat_punct p s =
  if is_punct p s then (
    advance p;
    true)
  else false

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let base_ty_of_name = function
  | "String" -> Some TString
  | "Date" -> Some TDate
  | "Integer" -> Some TInt
  | "Long" -> Some TLong
  | "Double" | "Float" -> Some TFloat
  | "Boolean" -> Some TBool
  | _ -> None

let rec parse_ty p : ty =
  let base =
    match peek p with
    | KEYWORD "int" ->
        advance p;
        TInt
    | KEYWORD "long" ->
        advance p;
        TLong
    | KEYWORD ("double" | "float") ->
        advance p;
        TFloat
    | KEYWORD "boolean" ->
        advance p;
        TBool
    | KEYWORD "void" ->
        advance p;
        TVoid
    | IDENT name -> (
        advance p;
        match base_ty_of_name name with
        | Some t -> t
        | None -> parse_generic p name)
    | _ -> error p "expected a type"
  in
  parse_array_suffix p base

and parse_generic p name =
  let args () =
    expect_punct p "<";
    if is_punct p ">" then (
      advance p;
      [])
    else
      let rec go acc =
        let t = parse_ty p in
        if eat_punct p "," then go (t :: acc)
        else (
          expect_punct p ">";
          List.rev (t :: acc))
      in
      go []
  in
  match name with
  | "List" | "ArrayList" | "LinkedList" -> (
      match args () with
      | [ t ] -> TList t
      | [] -> TList TInt
      | _ -> error p "List takes one type argument")
  | "Map" | "HashMap" | "TreeMap" -> (
      match args () with
      | [ k; v ] -> TMap (k, v)
      | [] -> TMap (TInt, TInt)
      | _ -> error p "Map takes two type arguments")
  | _ -> TClass name

and parse_array_suffix p base =
  if is_punct p "[" && peek2 p = PUNCT "]" then (
    advance p;
    advance p;
    parse_array_suffix p (TArray base))
  else base

(* Is the token at offset [n] the start of a type followed by an
   identifier (i.e., a declaration)?  Handles `int x`, `int[] x`,
   `List<T> x`, `Point p`. *)
let looks_like_decl p =
  match peek p with
  | KEYWORD ("int" | "long" | "double" | "float" | "boolean") -> true
  | IDENT _ -> (
      (* IDENT IDENT | IDENT '<' ... | IDENT '[' ']' IDENT *)
      match peek2 p with
      | IDENT _ -> true
      | PUNCT "<" -> true
      | PUNCT "[" -> (
          match (peekn p 2, peekn p 3) with
          | PUNCT "]", IDENT _ -> true
          | _ -> false)
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)

let static_namespaces =
  [ "Math"; "Integer"; "Double"; "Util"; "Long"; "ImageJ" ]

let rec parse_expr p : expr = parse_ternary p

and parse_ternary p =
  let c = parse_binop p 1 in
  if eat_punct p "?" then (
    let t = parse_expr p in
    expect_punct p ":";
    let f = parse_expr p in
    Ternary (c, t, f))
  else c

and binop_of_punct = function
  | "||" -> Some (1, Or)
  | "&&" -> Some (2, And)
  | "|" -> Some (3, BitOr)
  | "^" -> Some (4, BitXor)
  | "&" -> Some (5, BitAnd)
  | "==" -> Some (6, Eq)
  | "!=" -> Some (6, Ne)
  | "<" -> Some (7, Lt)
  | "<=" -> Some (7, Le)
  | ">" -> Some (7, Gt)
  | ">=" -> Some (7, Ge)
  | "<<" -> Some (8, Shl)
  | ">>" -> Some (8, Shr)
  | "+" -> Some (9, Add)
  | "-" -> Some (9, Sub)
  | "*" -> Some (10, Mul)
  | "/" -> Some (10, Div)
  | "%" -> Some (10, Mod)
  | _ -> None

and parse_binop p min_prec =
  let lhs = ref (parse_unary p) in
  let continue_ = ref true in
  while !continue_ do
    match peek p with
    | PUNCT op -> (
        match binop_of_punct op with
        | Some (prec, bop) when prec >= min_prec ->
            advance p;
            let rhs = parse_binop p (prec + 1) in
            lhs := Binop (bop, !lhs, rhs)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary p =
  match peek p with
  | PUNCT "-" ->
      advance p;
      Unop (Neg, parse_unary p)
  | PUNCT "!" ->
      advance p;
      Unop (Not, parse_unary p)
  | PUNCT "~" ->
      advance p;
      Unop (BitNot, parse_unary p)
  | _ -> parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  let continue_ = ref true in
  while !continue_ do
    match peek p with
    | PUNCT "." -> (
        advance p;
        let name = expect_ident p in
        if is_punct p "(" then
          let args = parse_args p in
          e :=
            (match !e with
            | Var ns when List.mem ns static_namespaces ->
                Call (ns ^ "." ^ name, args)
            | recv -> MethodCall (recv, name, args))
        else if String.equal name "length" then e := ArrLen !e
        else e := Field (!e, name))
    | PUNCT "[" ->
        advance p;
        let i = parse_expr p in
        expect_punct p "]";
        e := Index (!e, i)
    | _ -> continue_ := false
  done;
  !e

and parse_args p =
  expect_punct p "(";
  if eat_punct p ")" then []
  else
    let rec go acc =
      let a = parse_expr p in
      if eat_punct p "," then go (a :: acc)
      else (
        expect_punct p ")";
        List.rev (a :: acc))
    in
    go []

and parse_primary p =
  match peek p with
  | INT n ->
      advance p;
      IntLit n
  | FLOAT f ->
      advance p;
      FloatLit f
  | STRING s ->
      advance p;
      StrLit s
  | KEYWORD "true" ->
      advance p;
      BoolLit true
  | KEYWORD "false" ->
      advance p;
      BoolLit false
  | KEYWORD "new" -> parse_new p
  | PUNCT "(" -> (
      (* cast or parenthesized expression *)
      match (peek2 p, peekn p 2) with
      | KEYWORD ("int" | "long" | "double" | "float" | "boolean"), PUNCT ")"
        ->
          advance p;
          let t = parse_ty p in
          expect_punct p ")";
          Cast (t, parse_unary p)
      | _ ->
          advance p;
          let e = parse_expr p in
          expect_punct p ")";
          e)
  | IDENT name ->
      advance p;
      if is_punct p "(" then Call (name, parse_args p) else Var name
  | _ -> error p "expected an expression"

and parse_new p =
  expect_keyword p "new";
  match peek p with
  | KEYWORD ("int" | "long" | "double" | "float" | "boolean") | IDENT _ -> (
      (* capture the element/class name, then dims or constructor *)
      let name =
        match peek p with
        | KEYWORD k ->
            advance p;
            k
        | IDENT i ->
            advance p;
            i
        | _ -> assert false
      in
      let elem_ty =
        match name with
        | "int" -> Some TInt
        | "long" -> Some TLong
        | "double" | "float" -> Some TFloat
        | "boolean" -> Some TBool
        | "String" -> Some TString
        | _ -> None
      in
      (* generic args on constructor: new ArrayList<Foo>() *)
      if is_punct p "<" then (
        let depth = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          (match peek p with
          | PUNCT "<" -> incr depth
          | PUNCT ">" -> decr depth
          | _ -> ());
          advance p;
          if !depth = 0 then continue_ := false
        done);
      if is_punct p "[" then (
        let dims = ref [] in
        while is_punct p "[" do
          advance p;
          let d = parse_expr p in
          expect_punct p "]";
          dims := d :: !dims
        done;
        let base = match elem_ty with Some t -> t | None -> TClass name in
        NewArray (base, List.rev !dims))
      else if is_punct p "(" then
        let args = parse_args p in
        NewObj (name, args)
      else error p "expected '[' or '(' after new %s" name)
  | _ -> error p "expected a type after new"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let lvalue_of_expr p = function
  | Var v -> LVar v
  | Index (b, i) -> LIndex (b, i)
  | Field (b, f) -> LField (b, f)
  | _ -> error p "invalid assignment target"

let op_assign_ops =
  [ ("+=", Add); ("-=", Sub); ("*=", Mul); ("/=", Div); ("%=", Mod) ]

let rec parse_stmt p : stmt =
  match peek p with
  | PUNCT "{" -> Block (parse_block p)
  | KEYWORD "if" ->
      advance p;
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      let t = parse_stmt_as_list p in
      let f =
        if (match peek p with KEYWORD "else" -> true | _ -> false) then (
          advance p;
          parse_stmt_as_list p)
        else []
      in
      If (c, t, f)
  | KEYWORD "while" ->
      advance p;
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      While (c, parse_stmt_as_list p)
  | KEYWORD "do" ->
      advance p;
      let b = parse_stmt_as_list p in
      expect_keyword p "while";
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      expect_punct p ";";
      DoWhile (b, c)
  | KEYWORD "for" -> parse_for p
  | KEYWORD "return" ->
      advance p;
      if eat_punct p ";" then Return None
      else
        let e = parse_expr p in
        expect_punct p ";";
        Return (Some e)
  | KEYWORD "break" ->
      advance p;
      expect_punct p ";";
      Break
  | KEYWORD "continue" ->
      advance p;
      expect_punct p ";";
      Continue
  | _ ->
      if looks_like_decl p then (
        let s = parse_decl p in
        expect_punct p ";";
        s)
      else
        let s = parse_simple_stmt p in
        expect_punct p ";";
        s

and parse_decl p =
  let t = parse_ty p in
  let name = expect_ident p in
  (* C-style array suffix: int m[]; *)
  let t =
    if is_punct p "[" && peek2 p = PUNCT "]" then (
      advance p;
      advance p;
      TArray t)
    else t
  in
  if eat_punct p "=" then Decl (t, name, Some (parse_expr p))
  else Decl (t, name, None)

(* assignment / op-assignment / increment / bare expression, no ';' *)
and parse_simple_stmt p =
  let e = parse_expr p in
  match peek p with
  | PUNCT "=" ->
      advance p;
      let rhs = parse_expr p in
      Assign (lvalue_of_expr p e, rhs)
  | PUNCT op when List.mem_assoc op op_assign_ops ->
      advance p;
      let bop = List.assoc op op_assign_ops in
      let rhs = parse_expr p in
      Assign (lvalue_of_expr p e, Binop (bop, e, rhs))
  | PUNCT "++" ->
      advance p;
      Assign (lvalue_of_expr p e, Binop (Add, e, IntLit 1))
  | PUNCT "--" ->
      advance p;
      Assign (lvalue_of_expr p e, Binop (Sub, e, IntLit 1))
  | _ -> ExprStmt e

and parse_for p =
  expect_keyword p "for";
  expect_punct p "(";
  (* enhanced for?  "for (Type x : e)" *)
  let save = p.idx in
  let enhanced =
    if looks_like_decl p then (
      try
        let t = parse_ty p in
        let name = expect_ident p in
        if eat_punct p ":" then Some (t, name) else None
      with Parse_error _ ->
        p.idx <- save;
        None)
    else None
  in
  match enhanced with
  | Some (t, name) ->
      let e = parse_expr p in
      expect_punct p ")";
      ForEach (t, name, e, parse_stmt_as_list p)
  | None ->
      p.idx <- save;
      let init =
        if is_punct p ";" then []
        else if looks_like_decl p then [ parse_decl p ]
        else [ parse_simple_stmt p ]
      in
      expect_punct p ";";
      let cond = if is_punct p ";" then None else Some (parse_expr p) in
      expect_punct p ";";
      let upd = if is_punct p ")" then [] else [ parse_simple_stmt p ] in
      expect_punct p ")";
      For (init, cond, upd, parse_stmt_as_list p)

and parse_stmt_as_list p : stmt list =
  if is_punct p "{" then parse_block p else [ parse_stmt p ]

and parse_block p : stmt list =
  expect_punct p "{";
  let rec go acc =
    if eat_punct p "}" then List.rev acc else go (parse_stmt p :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let skip_modifiers p =
  let continue_ = ref true in
  while !continue_ do
    match peek p with
    | KEYWORD ("public" | "private" | "static" | "final") -> advance p
    | _ -> continue_ := false
  done

let parse_class p : class_decl =
  expect_keyword p "class";
  let cname = expect_ident p in
  expect_punct p "{";
  let rec fields acc =
    if eat_punct p "}" then List.rev acc
    else (
      skip_modifiers p;
      let t = parse_ty p in
      let name = expect_ident p in
      expect_punct p ";";
      fields ((t, name) :: acc))
  in
  { cname; cfields = fields [] }

let parse_method p : meth =
  skip_modifiers p;
  let ret = parse_ty p in
  let mname = expect_ident p in
  expect_punct p "(";
  let params =
    if eat_punct p ")" then []
    else
      let rec go acc =
        let t = parse_ty p in
        let name = expect_ident p in
        if eat_punct p "," then go ((t, name) :: acc)
        else (
          expect_punct p ")";
          List.rev ((t, name) :: acc))
      in
      go []
  in
  let body = parse_block p in
  { mname; ret; params; body }

(** Parse a full program: a sequence of class declarations and methods. *)
let parse_program (src : string) : program =
  let p = make (tokenize src) in
  let rec go classes methods =
    match peek p with
    | EOF -> { classes = List.rev classes; methods = List.rev methods }
    | KEYWORD "class" -> go (parse_class p :: classes) methods
    | _ -> go classes (parse_method p :: methods)
  in
  go [] []

(** Parse a single expression (used in tests). *)
let parse_expr_string (src : string) : expr =
  let p = make (tokenize src) in
  parse_expr p
