(** Abstract syntax for MiniJava — the sequential Java subset Casper's
    front-end accepts (paper §6.1: basic types and operators, primitive
    arrays and collections, user-defined types, conditionals, all loop
    forms, inlined methods, modeled library methods). *)

type ty =
  | TInt
  | TLong
  | TFloat  (** covers Java [float] and [double] *)
  | TBool
  | TString
  | TDate  (** modeled as a day count *)
  | TArray of ty
  | TList of ty
  | TMap of ty * ty
  | TClass of string
  | TVoid

let rec pp_ty ppf = function
  | TInt -> Fmt.string ppf "int"
  | TLong -> Fmt.string ppf "long"
  | TFloat -> Fmt.string ppf "double"
  | TBool -> Fmt.string ppf "boolean"
  | TString -> Fmt.string ppf "String"
  | TDate -> Fmt.string ppf "Date"
  | TArray t -> Fmt.pf ppf "%a[]" pp_ty t
  | TList t -> Fmt.pf ppf "List<%a>" pp_ty t
  | TMap (k, v) -> Fmt.pf ppf "Map<%a,%a>" pp_ty k pp_ty v
  | TClass n -> Fmt.string ppf n
  | TVoid -> Fmt.string ppf "void"

let ty_to_string t = Fmt.str "%a" pp_ty t

type unop = Neg | Not | BitNot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | BitAnd -> "&"
  | BitOr -> "|"
  | BitXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

type expr =
  | IntLit of int
  | FloatLit of float
  | BoolLit of bool
  | StrLit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Index of expr * expr  (** a[i] *)
  | Field of expr * string  (** l.l_discount *)
  | Call of string * expr list
      (** static / library call, receiver folded into the name:
          [Math.min(a,b)] *)
  | MethodCall of expr * string * expr list  (** list.get(i), d.after(dt) *)
  | NewArray of ty * expr list  (** new int[n], new double[r][c] *)
  | NewObj of string * expr list  (** new Point(x, y); new ArrayList<>() *)
  | Ternary of expr * expr * expr
  | Cast of ty * expr
  | ArrLen of expr  (** a.length *)

type lvalue =
  | LVar of string
  | LIndex of expr * expr  (** base expression, index *)
  | LField of expr * string

type stmt =
  | Decl of ty * string * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt list * expr option * stmt list * stmt list
      (** init statements, condition, update statements, body *)
  | ForEach of ty * string * expr * stmt list
  | Break
  | Continue
  | Return of expr option
  | ExprStmt of expr
  | Block of stmt list

type meth = {
  mname : string;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
}

type class_decl = { cname : string; cfields : (ty * string) list }
type program = { classes : class_decl list; methods : meth list }

let find_method prog name =
  List.find_opt (fun m -> String.equal m.mname name) prog.methods

let find_class prog name =
  List.find_opt (fun c -> String.equal c.cname name) prog.classes

(* ------------------------------------------------------------------ *)
(* Traversals used throughout the analyses.                            *)

let rec fold_expr (f : 'a -> expr -> 'a) (acc : 'a) (e : expr) : 'a =
  let acc = f acc e in
  match e with
  | IntLit _ | FloatLit _ | BoolLit _ | StrLit _ | Var _ -> acc
  | Unop (_, a) | Cast (_, a) | ArrLen a | Field (a, _) -> fold_expr f acc a
  | Binop (_, a, b) | Index (a, b) -> fold_expr f (fold_expr f acc a) b
  | Ternary (a, b, c) ->
      fold_expr f (fold_expr f (fold_expr f acc a) b) c
  | Call (_, args) | NewArray (_, args) | NewObj (_, args) ->
      List.fold_left (fold_expr f) acc args
  | MethodCall (r, _, args) ->
      List.fold_left (fold_expr f) (fold_expr f acc r) args

let exprs_of_lvalue = function
  | LVar _ -> []
  | LIndex (b, i) -> [ b; i ]
  | LField (b, _) -> [ b ]

let rec fold_stmt ~(expr : 'a -> expr -> 'a) ~(stmt : 'a -> stmt -> 'a)
    (acc : 'a) (s : stmt) : 'a =
  let acc = stmt acc s in
  let fe = fold_expr expr in
  let fss acc l = List.fold_left (fold_stmt ~expr ~stmt) acc l in
  match s with
  | Decl (_, _, None) | Break | Continue | Return None -> acc
  | Decl (_, _, Some e) | ExprStmt e | Return (Some e) -> fe acc e
  | Assign (lv, e) -> fe (List.fold_left fe acc (exprs_of_lvalue lv)) e
  | If (c, t, f) -> fss (fss (fe acc c) t) f
  | While (c, b) -> fss (fe acc c) b
  | DoWhile (b, c) -> fe (fss acc b) c
  | For (init, c, upd, b) ->
      let acc = fss acc init in
      let acc = match c with Some c -> fe acc c | None -> acc in
      fss (fss acc upd) b
  | ForEach (_, _, e, b) -> fss (fe acc e) b
  | Block b -> fss acc b

let fold_stmts ~expr ~stmt acc l =
  List.fold_left (fold_stmt ~expr ~stmt) acc l

(** Variables read anywhere in an expression. *)
let vars_of_expr e =
  fold_expr
    (fun acc -> function Var v -> v :: acc | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

(** Variables assigned (as lvalue roots) anywhere in a statement list. *)
let assigned_vars (stmts : stmt list) : string list =
  let rec lv_root = function
    | LVar v -> Some v
    | LIndex (b, _) | LField (b, _) -> root_of_expr b
  and root_of_expr = function
    | Var v -> Some v
    | Index (b, _) | Field (b, _) -> root_of_expr b
    | _ -> None
  in
  fold_stmts
    ~expr:(fun acc _ -> acc)
    ~stmt:(fun acc -> function
      | Assign (lv, _) -> (
          match lv_root lv with Some v -> v :: acc | None -> acc)
      | Decl (_, v, _) -> v :: acc
      | ExprStmt (MethodCall (Var v, ("put" | "add" | "set" | "remove"), _))
        ->
          (* collection mutation counts as assignment to the receiver *)
          v :: acc
      | _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare

(** Variables read anywhere in a statement list. *)
let read_vars (stmts : stmt list) : string list =
  fold_stmts
    ~expr:(fun acc -> function Var v -> v :: acc | _ -> acc)
    ~stmt:(fun acc _ -> acc)
    [] stmts
  |> List.sort_uniq String.compare
