(** Hand-written lexer for MiniJava. Produces a token list with line
    numbers for error reporting. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KEYWORD of string
  | PUNCT of string  (** operators and punctuation *)
  | EOF

exception Lex_error of string

let keywords =
  [
    "class"; "int"; "long"; "double"; "float"; "boolean"; "void"; "if";
    "else"; "while"; "do"; "for"; "return"; "break"; "continue"; "new";
    "true"; "false"; "null"; "static"; "public"; "private"; "final";
  ]

type t = { src : string; mutable pos : int; mutable line : int }

let make src = { src; pos = 0; line = 1 }
let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let error lx fmt =
  Fmt.kstr (fun s -> raise (Lex_error (Fmt.str "line %d: %s" lx.line s))) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_trivia lx
  | Some '/' when peek_char2 lx = Some '/' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_trivia lx
  | Some '/' when peek_char2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec to_close () =
        match (peek_char lx, peek_char2 lx) with
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | None, _ -> error lx "unterminated comment"
        | _ ->
            advance lx;
            to_close ()
      in
      to_close ();
      skip_trivia lx
  | _ -> ()

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_float =
    match (peek_char lx, peek_char2 lx) with
    | Some '.', Some c when is_digit c ->
        advance lx;
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance lx
        done;
        true
    | _ -> false
  in
  (* exponent *)
  let is_float =
    match peek_char lx with
    | Some ('e' | 'E') ->
        advance lx;
        (match peek_char lx with
        | Some ('+' | '-') -> advance lx
        | _ -> ());
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance lx
        done;
        true
    | _ -> is_float
  in
  (* Java numeric suffixes *)
  let suffix_float =
    match peek_char lx with
    | Some ('f' | 'F' | 'd' | 'D') ->
        advance lx;
        true
    | Some ('l' | 'L') ->
        advance lx;
        false
    | _ -> is_float
  in
  let text = String.sub lx.src start (lx.pos - start) in
  let text =
    match text.[String.length text - 1] with
    | 'f' | 'F' | 'd' | 'D' | 'l' | 'L' ->
        String.sub text 0 (String.length text - 1)
    | _ -> text
  in
  if is_float || suffix_float then FLOAT (float_of_string text)
  else INT (int_of_string text)

let lex_string lx =
  advance lx;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | Some '"' -> advance lx
    | Some '\\' -> (
        advance lx;
        match peek_char lx with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance lx;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance lx;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance lx;
            go ()
        | None -> error lx "unterminated string")
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
    | None -> error lx "unterminated string"
  in
  go ();
  STRING (Buffer.contents buf)

let two_char_ops =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "++";
    "--"; "<<"; ">>"; "->" ]

let lex_punct lx =
  let c1 = Option.get (peek_char lx) in
  match peek_char2 lx with
  | Some c2 when List.mem (Fmt.str "%c%c" c1 c2) two_char_ops ->
      advance lx;
      advance lx;
      PUNCT (Fmt.str "%c%c" c1 c2)
  | _ ->
      advance lx;
      PUNCT (String.make 1 c1)

let next_token lx : token * int =
  skip_trivia lx;
  let line = lx.line in
  match peek_char lx with
  | None -> (EOF, line)
  | Some c when is_digit c -> (lex_number lx, line)
  | Some '"' -> (lex_string lx, line)
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while
        match peek_char lx with Some c -> is_ident_char c | None -> false
      do
        advance lx
      done;
      let text = String.sub lx.src start (lx.pos - start) in
      if List.mem text keywords then (KEYWORD text, line)
      else (IDENT text, line)
  | Some _ -> (lex_punct lx, line)

(** Tokenize the whole input. *)
let tokenize (src : string) : (token * int) list =
  let lx = make src in
  let rec go acc =
    match next_token lx with
    | (EOF, _) as t -> List.rev (t :: acc)
    | t -> go (t :: acc)
  in
  go []

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Fmt.str "%S" s
  | IDENT s -> s
  | KEYWORD s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
