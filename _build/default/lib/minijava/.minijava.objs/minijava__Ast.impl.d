lib/minijava/ast.ml: Fmt List String
