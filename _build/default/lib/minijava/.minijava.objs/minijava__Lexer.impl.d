lib/minijava/lexer.ml: Buffer Fmt List Option String
