lib/minijava/interp.mli: Ast Casper_common
