lib/minijava/typecheck.ml: Ast Fmt List String
