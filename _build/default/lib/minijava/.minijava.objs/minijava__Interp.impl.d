lib/minijava/interp.ml: Ast Casper_common Float Fmt List Option String
