lib/minijava/loopnorm.ml: Ast List
