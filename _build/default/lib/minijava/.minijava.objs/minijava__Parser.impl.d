lib/minijava/parser.ml: Array Ast Fmt Lexer List String
