(** Loop normalization (paper §6.1): Casper converts all loop forms into
    the canonical [while(true) { if (!cond) break; body; update }] shape
    before computing verification conditions. We implement the same
    classical transformation; the analyses downstream then deal with a
    single loop form. *)

open Ast

let negate = function
  | Unop (Not, e) -> e
  | Binop (Lt, a, b) -> Binop (Ge, a, b)
  | Binop (Le, a, b) -> Binop (Gt, a, b)
  | Binop (Gt, a, b) -> Binop (Le, a, b)
  | Binop (Ge, a, b) -> Binop (Lt, a, b)
  | Binop (Eq, a, b) -> Binop (Ne, a, b)
  | Binop (Ne, a, b) -> Binop (Eq, a, b)
  | e -> Unop (Not, e)

(** The canonical loop: [While (BoolLit true, guard :: body)]. *)
let rec normalize_stmt (s : stmt) : stmt list =
  match s with
  | While (BoolLit true, body) ->
      [ While (BoolLit true, normalize_stmts body) ]
  | While (c, body) ->
      [
        While
          ( BoolLit true,
            If (negate c, [ Break ], []) :: normalize_stmts body );
      ]
  | DoWhile (body, c) ->
      (* body; while (c) body  ==  while(true){ body; if(!c) break; } *)
      [
        While
          (BoolLit true, normalize_stmts body @ [ If (negate c, [ Break ], []) ]);
      ]
  | For (init, cond, upd, body) ->
      let guard =
        match cond with Some c -> [ If (negate c, [ Break ], []) ] | None -> []
      in
      List.map (fun i -> i) init
      @ [ While (BoolLit true, guard @ normalize_stmts body @ upd) ]
  | ForEach (t, v, e, body) ->
      (* Desugared with an explicit cursor so the canonical form is
         expressible; fragment analysis keeps the original ForEach around
         for iteration-space extraction. *)
      let idx = "__" ^ v ^ "_i" in
      [
        Decl (TInt, idx, Some (IntLit 0));
        While
          ( BoolLit true,
            If (Binop (Ge, Var idx, ArrLen e), [ Break ], [])
            :: Decl (t, v, Some (Index (e, Var idx)))
            :: (normalize_stmts body
               @ [ Assign (LVar idx, Binop (Add, Var idx, IntLit 1)) ]) );
      ]
  | If (c, a, b) -> [ If (c, normalize_stmts a, normalize_stmts b) ]
  | Block b -> [ Block (normalize_stmts b) ]
  | s -> [ s ]

and normalize_stmts (stmts : stmt list) : stmt list =
  List.concat_map normalize_stmt stmts

let normalize_method (m : meth) : meth = { m with body = normalize_stmts m.body }

let normalize_program (p : program) : program =
  { p with methods = List.map normalize_method p.methods }
