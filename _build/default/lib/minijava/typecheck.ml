(** Lightweight type inference for MiniJava.

    The program analyzer needs the static types of every variable in scope
    at a fragment boundary (paper §3.2 uses type information to prune the
    search-space grammar), and the code generator needs expression types to
    pick API variants (Appendix C). *)

open Ast

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type env = (string * ty) list

let lookup env v =
  match List.assoc_opt v env with
  | Some t -> t
  | None -> err "unbound variable %s" v

let field_ty prog cls f =
  match find_class prog cls with
  | None -> err "unknown class %s" cls
  | Some c -> (
      match List.find_opt (fun (_, n) -> String.equal n f) c.cfields with
      | Some (t, _) -> t
      | None -> err "class %s has no field %s" cls f)

let is_numeric = function TInt | TLong | TFloat -> true | _ -> false

let join_num a b =
  match (a, b) with
  | TFloat, _ | _, TFloat -> TFloat
  | TLong, _ | _, TLong -> TLong
  | _ -> TInt

let library_ret name =
  match name with
  | "Math.min" | "Math.max" | "Math.abs" -> None (* depends on args *)
  | "Math.sqrt" | "Math.pow" | "Math.exp" | "Math.log" | "Math.floor"
  | "Math.ceil" | "Math.signum" | "Double.parseDouble" ->
      Some TFloat
  | "Math.round" | "Integer.parseInt" | "String.length" | "String.compareTo"
    ->
      Some TInt
  | "Util.parseDate" -> Some TDate
  | "String.equals" | "String.equalsIgnoreCase" | "String.contains"
  | "String.startsWith" | "String.isEmpty" | "Date.before" | "Date.after" ->
      Some TBool
  | "String.toLowerCase" | "String.toUpperCase" | "String.charAt" ->
      Some TString
  | "String.split" -> Some (TList TString)
  | _ -> None

let rec infer prog (env : env) (e : expr) : ty =
  match e with
  | IntLit _ -> TInt
  | FloatLit _ -> TFloat
  | BoolLit _ -> TBool
  | StrLit _ -> TString
  | Var v -> lookup env v
  | Unop (Neg, a) -> infer prog env a
  | Unop (Not, _) -> TBool
  | Unop (BitNot, _) -> TInt
  | Binop (op, a, b) -> (
      let ta = infer prog env a and tb = infer prog env b in
      match op with
      | Add when ta = TString || tb = TString -> TString
      | Add | Sub | Mul | Div | Mod ->
          if is_numeric ta && is_numeric tb then join_num ta tb
          else err "arithmetic on non-numeric types"
      | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> TBool
      | BitAnd | BitOr | BitXor | Shl | Shr -> TInt)
  | Index (a, _) -> (
      match infer prog env a with
      | TArray t | TList t -> t
      | t -> err "indexing non-array type %s" (ty_to_string t))
  | Field (a, f) -> (
      match infer prog env a with
      | TClass c -> field_ty prog c f
      | t -> err "field access on %s" (ty_to_string t))
  | ArrLen _ -> TInt
  | Call (name, args) -> (
      match library_ret name with
      | Some t -> t
      | None -> (
          match name with
          | "Math.min" | "Math.max" | "Math.abs" ->
              List.fold_left
                (fun acc a -> join_num acc (infer prog env a))
                TInt args
          | _ -> (
              (* user-defined method *)
              match find_method prog name with
              | Some m -> m.ret
              | None ->
                  (* unmodeled external library call (ImageJ etc.):
                     typed leniently so the analyzer can report the
                     fragment as untranslatable rather than the front
                     end rejecting the file *)
                  if String.contains name '.' then TFloat
                  else err "unknown method %s" name)))
  | MethodCall (recv, name, args) -> (
      match (infer prog env recv, name) with
      | TString, _ -> (
          match library_ret ("String." ^ name) with
          | Some t -> t
          | None -> err "unknown String method %s" name)
      | TDate, ("before" | "after") -> TBool
      | TList t, ("get" | "remove") -> t
      | TList _, ("size" | "indexOf") -> TInt
      | TList _, ("contains" | "isEmpty" | "add") -> TBool
      | TList t, "set" -> t
      | TMap (_, v), ("get" | "getOrDefault" | "put") -> v
      | TMap _, "containsKey" -> TBool
      | TMap _, "size" -> TInt
      | TClass c, _ when List.is_empty args -> field_ty prog c name
      | t, _ -> err "unknown method %s on %s" name (ty_to_string t))
  | NewArray (t, dims) ->
      List.fold_left (fun acc _ -> TArray acc) t (List.rev dims) |> fun x ->
      (* dims applied outside-in: new int[r][c] : int[][] *)
      ignore x;
      List.fold_left (fun acc _ -> TArray acc) t dims
  | NewObj (name, _) -> (
      match name with
      | "ArrayList" | "LinkedList" -> TList TInt (* refined by decl *)
      | "HashMap" | "TreeMap" -> TMap (TInt, TInt)
      | _ -> TClass name)
  | Ternary (_, a, _) -> infer prog env a
  | Cast (t, _) -> t

(** Collect the static environment of a method: params plus every local
    declaration, in source order. Declared types win over inferred
    constructor types (e.g. [List<Foo> l = new ArrayList<>()]). *)
let method_env (m : meth) : env =
  let rec of_stmts env stmts =
    List.fold_left
      (fun env s ->
        match s with
        | Decl (t, v, _) -> (v, t) :: env
        | If (_, a, b) -> of_stmts (of_stmts env a) b
        | While (_, b) | DoWhile (b, _) -> of_stmts env b
        | For (i, _, u, b) -> of_stmts (of_stmts (of_stmts env i) u) b
        | ForEach (t, v, _, b) -> of_stmts ((v, t) :: env) b
        | Block b -> of_stmts env b
        | _ -> env)
      env stmts
  in
  of_stmts (List.map (fun (t, v) -> (v, t)) m.params) m.body

(** Sanity-check a whole method: every expression must type-check in the
    method environment. Raises {!Type_error} otherwise. *)
let check_method prog (m : meth) : unit =
  let env = method_env m in
  let check_e () e = ignore (infer prog env e) in
  ignore (fold_stmts ~expr:check_e ~stmt:(fun () _ -> ()) () m.body)

let check_program prog = List.iter (check_method prog) prog.methods
