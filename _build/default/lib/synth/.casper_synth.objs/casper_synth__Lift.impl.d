lib/synth/lift.ml: Casper_analysis Casper_common Casper_ir List Minijava Option Stdlib String
