lib/synth/enumerate.ml: Casper_analysis Casper_common Casper_ir Casper_verify Grammar Hashtbl Lift List Minijava Seq String
