lib/synth/cegis.mli: Casper_analysis Casper_ir Minijava
