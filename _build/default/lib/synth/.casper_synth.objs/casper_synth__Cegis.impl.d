lib/synth/cegis.ml: Casper_analysis Casper_common Casper_cost Casper_ir Casper_vcgen Casper_verify Enumerate Float Fmt Grammar Hashtbl Lift List Minijava Seq String Unix
