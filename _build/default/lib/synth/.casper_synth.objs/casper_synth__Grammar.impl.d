lib/synth/grammar.ml: Casper_analysis Casper_common Casper_ir Fmt Hashtbl Lift List Minijava String
