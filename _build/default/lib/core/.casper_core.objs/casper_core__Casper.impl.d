lib/core/casper.ml: Casper_analysis Casper_codegen Casper_cost Casper_ir Casper_synth Casper_verify Fmt List Minijava Option
