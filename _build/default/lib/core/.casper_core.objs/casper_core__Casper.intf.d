lib/core/casper.mli: Casper_analysis Casper_ir Casper_synth Format Minijava
