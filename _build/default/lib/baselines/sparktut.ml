(** Reference implementations of the iterative algorithms from the Spark
    examples repository (§7.2, Figure 7c).

    The tutorial PageRank caches the links RDD and co-partitions ranks
    with links, so each of the 10 iterations avoids re-reading and
    re-shuffling the edge list; Casper's generated code does neither
    ("Casper currently does not generate any cache() statements, nor
    does it co-partition data"), which is why the reference runs ~1.3×
    faster. For logistic regression both sides are a single map+reduce
    per iteration and there is "no noticeable difference". *)

module Value = Casper_common.Value
module Plan = Mapreduce.Plan
module Engine = Mapreduce.Engine

let add_f a b = Value.Float (Value.as_float a +. Value.as_float b)

(** One PageRank iteration with cached, co-partitioned links: the
    contributions shuffle only moves the (page, contribution) pairs —
    the edge records themselves stay put. *)
let pagerank_iteration : Plan.t =
  Plan.(
    data "edges"
    |>> map_to_pair ~label:"contribs (co-partitioned)" (fun e ->
            ( Value.field "dst" e,
              Value.Float
                (Value.as_float (Value.field "srcRank" e)
                /. float_of_int (Value.as_int (Value.field "srcOutdeg" e)))
            ))
    |>> reduce_by_key ~label:"reduceByKey(+)" add_f
    |>> map_values ~label:"mapValues rank" (fun c ->
            Value.Float (0.15 +. (0.85 *. Value.as_float c))))

(** Simulated time for [iters] tutorial PageRank iterations. Thanks to
    cache(), the input read cost is paid once, not per iteration. *)
let pagerank_time ~cluster ~scale ~iters
    (datasets : (string * Value.t list) list) : float =
  let run = Engine.run_plan ~cluster ~datasets pagerank_iteration in
  let one = Engine.simulate_time ~cluster ~scale run in
  let read_once =
    float_of_int run.Engine.input_bytes
    *. scale *. cluster.Mapreduce.Cluster.read_byte_ns *. 1e-9
    /. float_of_int cluster.Mapreduce.Cluster.workers
  in
  (* iterations after the first reuse the cached RDD *)
  one +. (float_of_int (iters - 1) *. (one -. read_once))

(** One logistic-regression gradient iteration (tutorial style). *)
let logreg_iteration ~w0 ~w1 : Plan.t =
  Plan.(
    data "points"
    |>> map ~label:"map gradient" (fun p ->
            let x0 = Value.as_float (Value.field "x0" p) in
            let x1 = Value.as_float (Value.field "x1" p) in
            let label = Value.as_float (Value.field "label" p) in
            let h = 1.0 /. (1.0 +. exp (-.((w0 *. x0) +. (w1 *. x1)))) in
            Value.Tuple
              [ Value.Float ((h -. label) *. x0); Value.Float ((h -. label) *. x1) ])
    |>> global_reduce ~label:"reduce (grad sum)" (fun a b ->
            match (a, b) with
            | Value.Tuple [ a0; a1 ], Value.Tuple [ b0; b1 ] ->
                Value.Tuple [ add_f a0 b0; add_f a1 b1 ]
            | _ -> a))

let logreg_time ~cluster ~scale ~iters
    (datasets : (string * Value.t list) list) : float =
  let run =
    Engine.run_plan ~cluster ~datasets (logreg_iteration ~w0:0.5 ~w1:(-0.3))
  in
  let one = Engine.simulate_time ~cluster ~scale run in
  float_of_int iters *. one
