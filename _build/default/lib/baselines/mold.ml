(** The MOLD baseline (Radoi et al., OOPSLA'14) — a syntax-directed,
    rule-based Java→Spark translator.

    MOLD is closed source; the paper obtained its generated code from the
    authors. We reimplement the documented behaviour of those outputs as
    AST-directed rewrite rules, including the inefficiencies §7.2
    reports:

    - StringMatch: "MOLD emitted a key-value pair for every word in the
      dataset" and "used separate MapReduce operations to compute the
      result for each keyword" (1.44× slower than Casper).
    - LinearRegression: "its implementation zipped the input RDD with
      its index as a pre-processing step, almost doubling the size of
      input data" (2.34× slower).
    - Histogram / Matrix Multiplication: translations were semantically
      correct but grouped unboundedly and "failed to execute on the
      cluster because they ran out of memory".
    - PCA / KMeans: no rule applies.

    Unlike Casper there is no verification — a rule either fires on the
    AST shape or the translation fails. *)

module F = Casper_analysis.Fragment
module Value = Casper_common.Value
module Plan = Mapreduce.Plan
open Minijava.Ast

type result =
  | Translated of translation
  | Out_of_memory
      (** a rule fired but the plan groups unboundedly; it dies on the
          cluster *)
  | No_rule  (** no rewrite rule matches this loop shape *)

and translation = {
  plans : (string * (Minijava.Interp.env -> Plan.t)) list;
      (** one plan per output variable (MOLD splits jobs per output),
          closed over the entry environment for free variables *)
  zip_preprocess : bool;  (** the zipWithIndex inefficiency *)
  describe : string;
}

(* Does the loop body match "flag |= (elem equals KEY)" for each boolean
   output?  (StringMatch shape.) *)
let flag_scan_rule (frag : F.t) : result option =
  match frag.schema with
  | F.SList { elem; _ } ->
      let bool_outputs =
        List.filter (fun (_, t, _) -> t = TBool) frag.outputs
      in
      if
        List.length bool_outputs = List.length frag.outputs
        && not (List.is_empty bool_outputs)
      then
        (* find, per output, the key variable it is compared against *)
        let key_of out =
          fold_stmts
            ~expr:(fun acc _ -> acc)
            ~stmt:(fun acc s ->
              match s with
              | If
                  ( MethodCall (Var e, "equals", [ Var key ]),
                    [ Assign (LVar v, BoolLit true) ],
                    [] )
                when String.equal e elem && String.equal v out ->
                  Some key
              | _ -> acc)
            None frag.body
        in
        let pairs =
          List.filter_map
            (fun (v, _, _) ->
              Option.map (fun k -> (v, k)) (key_of v))
            frag.outputs
        in
        if List.length pairs = List.length frag.outputs then
          let d = F.primary_dataset frag in
          Some
            (Translated
               {
                 plans =
                   (* one full job per keyword; every record emits *)
                   List.map
                     (fun (out, key) ->
                       ( out,
                         fun entry ->
                           let key_v =
                             match List.assoc_opt key entry with
                             | Some v -> v
                             | None -> Value.Str key
                           in
                           Plan.(
                             data d
                             |>> map_to_pair ~label:"mapToPair (every word)"
                                   (fun w ->
                                     (key_v, Value.Bool (Value.equal w key_v)))
                             |>> reduce_by_key ~label:"reduceByKey(||)"
                                   (fun a b ->
                                     Value.Bool
                                       (Value.as_bool a || Value.as_bool b)))
                       ))
                     pairs;
                 zip_preprocess = false;
                 describe =
                   "per-keyword jobs, one emit per input word";
               })
        else None
      else None
  | _ -> None

(* "map.put(key, map.getOrDefault(key, 0) + expr)" — WordCount shape *)
let counter_map_rule (frag : F.t) : result option =
  match (frag.schema, frag.outputs) with
  | F.SList _, [ (_out, TMap _, _) ] ->
      let d = F.primary_dataset frag in
      Some
        (Translated
           {
             plans =
               [
                 ( _out,
                   fun _ ->
                     Plan.(
                       data d
                       |>> map_to_pair ~label:"mapToPair" (fun w ->
                               (w, Value.Int 1))
                       |>> reduce_by_key ~label:"reduceByKey(+)" (fun a b ->
                               Value.Int (Value.as_int a + Value.as_int b)))
                 );
               ];
             zip_preprocess = false;
             describe = "mapToPair + reduceByKey";
           })
  | _ -> None

(* numeric accumulations over indexed arrays / record lists — MOLD's
   array-to-RDD conversion zips every element with its index first *)
let numeric_acc_rule (frag : F.t) : result option =
  let scalar_numeric =
    List.for_all
      (fun (_, t, _) -> match t with TInt | TLong | TFloat -> true | _ -> false)
      frag.outputs
    && not (List.is_empty frag.outputs)
  in
  match frag.schema with
  | (F.SArrays _ | F.SList _) when scalar_numeric ->
      let d = F.primary_dataset frag in
      let outs = List.map (fun (v, _, _) -> v) frag.outputs in
      Some
        (Translated
           {
             plans =
               [
                 ( String.concat "," outs,
                   fun _ ->
                   Plan.(
                     data d
                     (* zipWithIndex: (index, element) pairs double the
                        volume before the real map *)
                     |>> flat_map ~label:"zipWithIndex"
                           (let i = ref (-1) in
                            fun e ->
                              incr i;
                              [ Value.Tuple [ Value.Int !i; e ] ])
                     |>> flat_map ~label:"flatMapToPair (per output)"
                           (fun r ->
                             let e =
                               match r with
                               | Value.Tuple [ _; e ] -> e
                               | e -> e
                             in
                             let payload =
                               (* the numeric value MOLD's emit carries *)
                               match e with
                               | Value.Int _ | Value.Float _ -> e
                               | Value.Struct (_, (_, v) :: _) -> v
                               | _ -> Value.Float 0.0
                             in
                             List.map
                               (fun o ->
                                 Value.Tuple [ Value.Str o; payload ])
                               outs)
                     |>> reduce_by_key ~label:"reduceByKey(+)" (fun a b ->
                             match (a, b) with
                             | Value.Int x, Value.Int y -> Value.Int (x + y)
                             | _ ->
                                 Value.Float
                                   (Value.as_float a +. Value.as_float b)))
                 );
               ];
             zip_preprocess = true;
             describe = "zipWithIndex preprocessing + per-output emits";
           })
  | _ -> None

(* keyed collection outputs: MOLD groups all updates per key on the
   driver — correct on a multicore, OOM at cluster scale *)
let group_all_rule (frag : F.t) : result option =
  match frag.outputs with
  | [ (_, (TArray _ | TMap _), _) ] -> Some Out_of_memory
  | _ -> None

let rules = [ flag_scan_rule; counter_map_rule; numeric_acc_rule; group_all_rule ]

(** Apply the first matching rule (classical syntax-directed dispatch). *)
let translate_fragment (frag : F.t) : result =
  if frag.unsupported <> None then No_rule
  else
    let rec go = function
      | [] -> No_rule
      | r :: rest -> ( match r frag with Some res -> res | None -> go rest)
    in
    go rules
