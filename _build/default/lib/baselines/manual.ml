(** Hand-written Spark reference implementations (§7.2).

    The paper hired Spark developers through UpWork to rewrite the
    non-SQL benchmarks (Appendix E.2 lists the hiring bar). These plans
    play that role: idiomatic single-pass implementations, including the
    one case where the human beat Casper by exploiting domain knowledge
    — the 3D Histogram developer knew RGB values are bounded by 256·3
    and used Spark's [aggregate] with a fixed-size array, avoiding the
    per-key shuffle Casper generates. *)

module Value = Casper_common.Value
module Plan = Mapreduce.Plan

let add_f a b = Value.Float (Value.as_float a +. Value.as_float b)
let add_i a b = Value.Int (Value.as_int a + Value.as_int b)

(** WordCount: the canonical mapToPair + reduceByKey. *)
let word_count : Plan.t =
  Plan.(
    data "words"
    |>> map_to_pair ~label:"mapToPair" (fun w -> (w, Value.Int 1))
    |>> reduce_by_key ~label:"reduceByKey(+)" add_i)

(** StringMatch: emit only on match (the paper's efficient encoding). *)
let string_match ~key1 ~key2 : Plan.t =
  Plan.(
    data "words"
    |>> flat_map ~label:"flatMapToPair (on match)" (fun w ->
            let hits = ref [] in
            if Value.equal w key1 then
              hits := Value.Tuple [ key1; Value.Bool true ] :: !hits;
            if Value.equal w key2 then
              hits := Value.Tuple [ key2; Value.Bool true ] :: !hits;
            !hits)
    |>> reduce_by_key ~label:"reduceByKey(||)" (fun a b ->
            Value.Bool (Value.as_bool a || Value.as_bool b)))

(** Linear regression: one pass folding the five sums as a tuple. *)
let linear_regression : Plan.t =
  Plan.(
    data "points"
    |>> map ~label:"map to sums tuple" (fun p ->
            let x = Value.as_float (Value.field "x" p) in
            let y = Value.as_float (Value.field "y" p) in
            Value.Tuple
              [
                Value.Float x;
                Value.Float y;
                Value.Float (x *. x);
                Value.Float (y *. y);
                Value.Float (x *. y);
              ])
    |>> global_reduce ~label:"reduce (tuple sum)" (fun a b ->
            match (a, b) with
            | Value.Tuple xs, Value.Tuple ys ->
                Value.Tuple (List.map2 add_f xs ys)
            | _ -> a))

(** 3D Histogram via the developer's [aggregate] trick: each partition
    folds into a bounded 768-slot array, only the per-partition arrays
    are combined — modeled as a map stage emitting per-partition
    pre-combined entries and a cheap keyed merge. *)
let histogram_aggregate : Plan.t =
  Plan.(
    data "pixels"
    |>> flat_map ~label:"aggregate (768-bin partials)" (fun p ->
            let c name = Value.as_int (Value.field name p) in
            [
              Value.Tuple [ Value.Int (c "r"); Value.Int 1 ];
              Value.Tuple [ Value.Int (c "g" + 256); Value.Int 1 ];
              Value.Tuple [ Value.Int (c "b" + 512); Value.Int 1 ];
            ])
    |>> reduce_by_key ~label:"combine partials" add_i)

(** Wikipedia page count: classic keyed sum. *)
let wikipedia_pagecount : Plan.t =
  Plan.(
    data "log"
    |>> map_to_pair ~label:"mapToPair" (fun v ->
            (Value.field "page" v, Value.field "views" v))
    |>> reduce_by_key ~label:"reduceByKey(+)" add_i)

(** Database select: filter + sum (the developer used Spark's built-in
    [filter]/[sum] instead of an explicit map/reduce — §7.2 notes such
    variants made no performance difference). *)
let database_select ~threshold : Plan.t =
  Plan.(
    data "rows"
    |>> filter ~label:"filter" (fun r ->
            Value.as_float (Value.field "amount" r) > threshold)
    |>> map ~label:"map amount" (fun r -> Value.field "amount" r)
    |>> global_reduce ~label:"sum" add_f)

(** Anscombe transform: a pure map. *)
let anscombe : Plan.t =
  Plan.(
    data "pa"
    |>> map ~label:"map anscombe" (fun v ->
            Value.Float (2.0 *. sqrt (Value.as_float v +. 0.375))))

(** Red-to-magenta: pure per-pixel map over the channel tuples. *)
let red_to_magenta : Plan.t =
  Plan.(
    data "r"
    |>> map ~label:"map channel" (fun v -> v))
