lib/baselines/sparktut.ml: Casper_common Mapreduce
