lib/baselines/manual.ml: Casper_common List Mapreduce
