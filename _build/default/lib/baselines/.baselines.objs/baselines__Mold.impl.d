lib/baselines/mold.ml: Casper_analysis Casper_common List Mapreduce Minijava Option String
