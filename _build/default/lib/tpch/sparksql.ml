(** SparkSQL-substitute reference plans for the TPC-H experiments
    (Fig. 7b).

    These are hand-built physical plans with the *shapes* the paper
    observed in SparkSQL's query plans — that is where the runtime
    differences it reports come from:

    - Q1 and Q6: SparkSQL's two-phase aggregation exchanges un-combined
      rows (extra data shuffling), where Casper's translation combines
      locally ("we attribute this to the extra data shuffling performed
      by the SparkSQL query plan").
    - Q15: the plan scans the lineitem relation twice (revenue subquery
      + join against its max), where Casper's implementation scans it
      once.
    - Q17: SparkSQL schedules the correlated subquery as a broadcast
      join and beats Casper's shuffle join by ~1.7×.

    Each query returns the list of engine runs it performs; its time is
    the sum over runs. *)

module Value = Casper_common.Value
module Plan = Mapreduce.Plan
module Engine = Mapreduce.Engine

let f = Value.field
let fl v name = Value.as_float (f name v)
let it v name = Value.as_int (f name v)
let st v name = Value.as_str (f name v)

type qrun = {
  runs : Engine.run list;
  result : Value.t list;  (** final rows, for cross-checks *)
}

(* Catalyst analysis/optimization/codegen latency per query *)
let planning_overhead_s = 2.5

let time ~cluster ~scale (q : qrun) : float =
  planning_overhead_s
  +. List.fold_left
       (fun acc r -> acc +. Engine.simulate_time ~cluster ~scale r)
       0.0 q.runs

(* ---------------- Q1: pricing summary report ---------------- *)

let q1 ~cluster (datasets : (string * Value.t list) list) ~(cutoff : int) :
    qrun =
  let open Plan in
  (* SparkSQL's exchange ships ungrouped rows: modeled with groupByKey *)
  let plan =
    data "lineitem"
    |>> filter ~label:"Filter shipdate" (fun l -> it l "l_shipdate" <= cutoff)
    |>> map_to_pair ~label:"Project" (fun l ->
            ( Value.Str (st l "l_returnflag" ^ st l "l_linestatus"),
              Value.Tuple
                [
                  Value.Int (it l "l_quantity");
                  Value.Float (fl l "l_extendedprice");
                  Value.Float
                    (fl l "l_extendedprice" *. (1.0 -. fl l "l_discount"));
                  Value.Int 1;
                ] ))
    |>> group_by_key ~label:"Exchange hashpartitioning" ()
    |>> map_values ~label:"HashAggregate" (fun vs ->
            match vs with
            | Value.List rows ->
                List.fold_left
                  (fun acc row ->
                    match (acc, row) with
                    | ( Value.Tuple [ Value.Int q; Value.Float b; Value.Float d; Value.Int c ],
                        Value.Tuple [ Value.Int q'; Value.Float b'; Value.Float d'; Value.Int c' ] ) ->
                        Value.Tuple
                          [
                            Value.Int (q + q');
                            Value.Float (b +. b');
                            Value.Float (d +. d');
                            Value.Int (c + c');
                          ]
                    | _ -> acc)
                  (Value.Tuple
                     [ Value.Int 0; Value.Float 0.0; Value.Float 0.0; Value.Int 0 ])
                  rows
            | v -> v)
  in
  let run = Engine.run_plan ~cluster ~datasets plan in
  { runs = [ run ]; result = run.Engine.output }

(* ---------------- Q6: forecasting revenue change ---------------- *)

let q6 ~cluster (datasets : (string * Value.t list) list) ~(dt1 : int)
    ~(dt2 : int) : qrun =
  let open Plan in
  let plan =
    data "lineitem"
    |>> filter ~label:"Filter" (fun l ->
            it l "l_shipdate" > dt1
            && it l "l_shipdate" < dt2
            && fl l "l_discount" >= 0.05
            && fl l "l_discount" <= 0.07
            && it l "l_quantity" < 24)
    |>> map ~label:"Project revenue" (fun l ->
            Value.Float (fl l "l_extendedprice" *. fl l "l_discount"))
    (* two-phase agg without local combining: full exchange *)
    |>> global_reduce ~label:"Exchange+HashAggregate" ~comm_assoc:false
          (fun a b -> Value.Float (Value.as_float a +. Value.as_float b))
  in
  let run = Engine.run_plan ~cluster ~datasets plan in
  { runs = [ run ]; result = run.Engine.output }

(* ---------------- Q15: top supplier ---------------- *)

let q15 ~cluster (datasets : (string * Value.t list) list) ~(dt1 : int)
    ~(dt2 : int) : qrun =
  let open Plan in
  let revenue_plan =
    data "lineitem"
    |>> filter ~label:"Filter shipdate" (fun l ->
            it l "l_shipdate" >= dt1 && it l "l_shipdate" < dt2)
    |>> map_to_pair ~label:"Project" (fun l ->
            ( Value.Int (it l "l_suppkey"),
              Value.Float (fl l "l_extendedprice" *. (1.0 -. fl l "l_discount"))
            ))
    |>> reduce_by_key ~label:"HashAggregate" (fun a b ->
            Value.Float (Value.as_float a +. Value.as_float b))
  in
  (* scan 1: revenue per supplier *)
  let run1 = Engine.run_plan ~cluster ~datasets revenue_plan in
  (* scan 2: SparkSQL recomputes the aggregate under max() instead of
     reusing the first scan *)
  let run2 = Engine.run_plan ~cluster ~datasets revenue_plan in
  let max_rev =
    List.fold_left
      (fun acc r ->
        match r with
        | Value.Tuple [ _; Value.Float v ] -> Float.max acc v
        | _ -> acc)
      neg_infinity run2.Engine.output
  in
  let best =
    List.filter
      (fun r ->
        match r with
        | Value.Tuple [ _; Value.Float v ] -> v = max_rev
        | _ -> false)
      run1.Engine.output
  in
  { runs = [ run1; run2 ]; result = best }

(* ---------------- Q17: small-quantity-order revenue ---------------- *)

let q17 ~cluster (datasets : (string * Value.t list) list) ~(brand : string)
    ~(container : string) : qrun =
  let open Plan in
  (* per-part average quantity over the brand/container parts *)
  let part_keys =
    match List.assoc_opt "part" datasets with
    | Some parts ->
        List.filter_map
          (fun p ->
            if String.equal (st p "p_brand") brand
               && String.equal (st p "p_container") container
            then Some (it p "p_partkey")
            else None)
          parts
    | None -> []
  in
  let in_part l = List.mem (it l "l_partkey") part_keys in
  let avg_plan =
    data "lineitem"
    |>> filter ~label:"Filter part" in_part
    |>> map_to_pair ~label:"Project qty" (fun l ->
            ( Value.Int (it l "l_partkey"),
              Value.Tuple [ Value.Int (it l "l_quantity"); Value.Int 1 ] ))
    |>> reduce_by_key ~label:"HashAggregate" (fun a b ->
            match (a, b) with
            | Value.Tuple [ Value.Int q; Value.Int c ],
              Value.Tuple [ Value.Int q'; Value.Int c' ] ->
                Value.Tuple [ Value.Int (q + q'); Value.Int (c + c') ]
            | _ -> a)
  in
  let run1 = Engine.run_plan ~cluster ~datasets avg_plan in
  let avgs = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r with
      | Value.Tuple [ Value.Int k; Value.Tuple [ Value.Int q; Value.Int c ] ]
        ->
          Hashtbl.replace avgs k (float_of_int q /. float_of_int (max 1 c))
      | _ -> ())
    run1.Engine.output;
  (* broadcast join: the average table rides along with the mappers, so
     the big relation is never shuffled — this is the scheduling win
     the paper credits SparkSQL with on Q17 *)
  let final_plan =
    data "lineitem"
    |>> filter ~label:"Filter part (bcast)" in_part
    |>> flat_map ~label:"BroadcastHashJoin" (fun l ->
            match Hashtbl.find_opt avgs (it l "l_partkey") with
            | Some avg when float_of_int (it l "l_quantity") < 0.2 *. avg ->
                [ Value.Float (fl l "l_extendedprice") ]
            | _ -> [])
    |>> global_reduce ~label:"HashAggregate" (fun a b ->
            Value.Float (Value.as_float a +. Value.as_float b))
  in
  let run2 = Engine.run_plan ~cluster ~datasets final_plan in
  { runs = [ run1; run2 ]; result = run2.Engine.output }
