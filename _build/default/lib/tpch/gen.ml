(** Synthetic TPC-H data generator (scaled-down dbgen substitute).

    Produces the relations the paper's TPC-H experiments touch —
    lineitem, part, supplier, partsupp — as {!Casper_common.Value}
    structs with the TPC-H value distributions that matter to the
    queries: shipdate spread over 1992–1998, discount in 0.00–0.10,
    quantity 1–50, a small set of brands and containers. *)

module Value = Casper_common.Value
module Rng = Casper_common.Rng
module Library = Casper_common.Library

let date rng =
  let y = 1992 + Rng.int rng 7 in
  let m = 1 + Rng.int rng 12 in
  let d = 1 + Rng.int rng 28 in
  Library.parse_date (Fmt.str "%04d-%02d-%02d" y m d)

let brands = [| "Brand#12"; "Brand#23"; "Brand#34"; "Brand#45"; "Brand#55" |]

let containers =
  [| "SM CASE"; "MED BOX"; "LG JAR"; "JUMBO PACK"; "WRAP BAG" |]

let lineitem rng ~(parts : int) ~(suppliers : int) : Value.t =
  Value.Struct
    ( "LineItem",
      [
        ("l_partkey", Value.Int (1 + Rng.int rng parts));
        ("l_suppkey", Value.Int (1 + Rng.int rng suppliers));
        ("l_quantity", Value.Int (1 + Rng.int rng 50));
        ("l_extendedprice", Value.Float (Rng.float_range rng 900.0 100000.0));
        ("l_discount", Value.Float (float_of_int (Rng.int rng 11) /. 100.0));
        ("l_tax", Value.Float (float_of_int (Rng.int rng 9) /. 100.0));
        ( "l_returnflag",
          Value.Str (match Rng.int rng 3 with 0 -> "A" | 1 -> "N" | _ -> "R")
        );
        ( "l_linestatus",
          Value.Str (if Rng.bool rng then "O" else "F") );
        ("l_shipdate", Value.Int (date rng));
      ] )

let part rng ~key : Value.t =
  Value.Struct
    ( "Part",
      [
        ("p_partkey", Value.Int key);
        ("p_brand", Value.Str (Rng.pick rng (Array.to_list brands)));
        ("p_container", Value.Str (Rng.pick rng (Array.to_list containers)));
        ("p_retailprice", Value.Float (Rng.float_range rng 900.0 2000.0));
      ] )

let supplier rng ~key : Value.t =
  Value.Struct
    ( "Supplier",
      [
        ("s_suppkey", Value.Int key);
        ("s_name", Value.Str (Fmt.str "Supplier#%05d" key));
        ("s_acctbal", Value.Float (Rng.float_range rng (-999.0) 9999.0));
      ] )

let partsupp rng ~(parts : int) ~(suppliers : int) : Value.t =
  Value.Struct
    ( "PartSupp",
      [
        ("ps_partkey", Value.Int (1 + Rng.int rng parts));
        ("ps_suppkey", Value.Int (1 + Rng.int rng suppliers));
        ("ps_availqty", Value.Int (1 + Rng.int rng 9999));
        ("ps_supplycost", Value.Float (Rng.float_range rng 1.0 1000.0));
      ] )

type db = {
  lineitem : Value.t list;
  part : Value.t list;
  supplier : Value.t list;
  partsupp : Value.t list;
}

(** Generate a database with ~[lineitems] lineitem rows (the other
    relations scale with TPC-H's ratios). *)
let generate ?(seed = 7) ~(lineitems : int) () : db =
  let rng = Rng.create seed in
  let parts = max 8 (lineitems / 30) in
  let suppliers = max 4 (lineitems / 300) in
  {
    lineitem =
      List.init lineitems (fun _ -> lineitem rng ~parts ~suppliers);
    part = List.init parts (fun i -> part rng ~key:(i + 1));
    supplier = List.init suppliers (fun i -> supplier rng ~key:(i + 1));
    partsupp =
      List.init (parts * 2) (fun _ -> partsupp rng ~parts ~suppliers);
  }

let datasets (db : db) : (string * Value.t list) list =
  [
    ("lineitem", db.lineitem);
    ("part", db.part);
    ("supplier", db.supplier);
    ("partsupp", db.partsupp);
  ]
