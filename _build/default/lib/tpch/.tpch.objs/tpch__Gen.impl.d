lib/tpch/gen.ml: Array Casper_common Fmt List
