lib/tpch/sparksql.ml: Casper_common Float Hashtbl List Mapreduce String
