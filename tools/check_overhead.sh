#!/bin/sh
# Observability overhead gate (DESIGN.md §9): instrumentation must stay
# within budget on the Table 2 synthesis workload. Runs the synth_perf
# bench RUNS times with tracing off and with tracing on, takes each
# mode's best fast-path wall time (min-of-N absorbs scheduler noise,
# which dwarfs the effect on a loaded CI machine), and fails if the
# traced mode exceeds the untraced one by more than TOL percent.
# Enabled tracing bounds disabled tracing from above: the untraced run
# already carries every Obs call as a no-op, so passing this gate also
# certifies the disabled-instrumentation <2% claim against the
# pre-instrumentation BENCH_synth.json numbers.
set -eu

cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
TOL="${TOL:-2.0}"
BENCH="_build/default/bench/main.exe"

if [ ! -x "$BENCH" ]; then
  echo "bench/main.exe not built — run: dune build bench/main.exe" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

i=1
while [ "$i" -le "$RUNS" ]; do
  "$BENCH" --only synth_perf --json "$tmp/plain$i.json" > /dev/null
  "$BENCH" --only synth_perf --json "$tmp/traced$i.json" \
    --trace "$tmp/trace$i.json" > /dev/null
  i=$((i + 1))
done

python3 - "$tmp" "$RUNS" "$TOL" << 'EOF'
import json, sys

tmp, runs, tol = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])

def best(kind):
    return min(
        json.load(open("%s/%s%d.json" % (tmp, kind, i)))["synth"]["fast_total_s"]
        for i in range(1, runs + 1)
    )

plain, traced = best("plain"), best("traced")
overhead = 100.0 * (traced / plain - 1.0)
print("fast-path wall time: untraced %.3fs, traced %.3fs, overhead %+.2f%% "
      "(budget %.1f%%)" % (plain, traced, overhead, tol))
sys.exit(0 if overhead < tol else 1)
EOF
