#!/bin/sh
# Source hygiene gate used by CI (and runnable locally). The toolchain
# image has no ocamlformat, so instead of a full formatter pass this
# enforces the invariants a formatter would: no trailing whitespace, no
# hard tabs in OCaml sources, no leftover conflict markers, and every
# .ml/.mli ends with a newline.
set -eu

cd "$(dirname "$0")/.."
fail=0

files=$(find lib bin bench test examples -name '*.ml' -o -name '*.mli' | sort)

for f in $files; do
  if grep -qn ' $' "$f"; then
    echo "trailing whitespace: $f"
    grep -n ' $' "$f" | head -3
    fail=1
  fi
  if grep -qnP '\t' "$f"; then
    echo "hard tab: $f"
    fail=1
  fi
  if [ -s "$f" ] && [ "$(tail -c 1 "$f" | od -An -c | tr -d ' \n')" != '\n' ]; then
    echo "no trailing newline: $f"
    fail=1
  fi
done

if grep -rn '^<<<<<<< \|^>>>>>>> ' --include='*.ml' --include='*.mli' \
    --include='*.md' --include='dune' lib bin bench test examples; then
  echo "conflict markers found"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "hygiene check FAILED"
  exit 1
fi
echo "hygiene check OK ($(echo "$files" | wc -l) files)"
